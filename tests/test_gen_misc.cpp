#include "wavemig/gen/misc.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "wavemig/gen/arith.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(voter, majority_of_small_odd_counts) {
  for (unsigned n : {3u, 5u, 7u, 9u, 11u}) {
    const auto net = gen::voter_circuit(n);
    std::mt19937_64 rng{n};
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<bool> in(n);
      unsigned ones = 0;
      for (auto&& b : in) {
        b = (rng() & 1u) != 0;
        ones += b ? 1u : 0u;
      }
      const auto out = simulate_pattern(net, in);
      EXPECT_EQ(out[0], ones > n / 2) << "n=" << n << " ones=" << ones;
    }
  }
}

TEST(voter, boundary_votes) {
  const auto net = gen::voter_circuit(5);
  // Exactly 2 of 5: reject; exactly 3 of 5: accept.
  EXPECT_FALSE(simulate_pattern(net, {true, true, false, false, false})[0]);
  EXPECT_TRUE(simulate_pattern(net, {true, true, true, false, false})[0]);
  EXPECT_THROW(gen::voter_circuit(4), std::invalid_argument);
  EXPECT_THROW(gen::voter_circuit(1), std::invalid_argument);
}

TEST(barrel_shifter, rotates_left_by_amount) {
  const unsigned w = 16;
  const auto net = gen::barrel_shifter_circuit(w);
  std::mt19937_64 rng{5};
  for (int trial = 0; trial < 60; ++trial) {
    const auto value = static_cast<std::uint16_t>(rng());
    const unsigned amount = static_cast<unsigned>(rng()) % w;
    std::vector<bool> in;
    for (unsigned i = 0; i < w; ++i) {
      in.push_back((value >> i) & 1u);
    }
    for (unsigned i = 0; i < 4; ++i) {
      in.push_back((amount >> i) & 1u);
    }
    const auto out = simulate_pattern(net, in);
    const auto expected = static_cast<std::uint16_t>((value << amount) | (value >> (w - amount)));
    std::uint16_t result = 0;
    for (unsigned i = 0; i < w; ++i) {
      result |= static_cast<std::uint16_t>(out[i]) << i;
    }
    EXPECT_EQ(result, amount == 0 ? value : expected);
  }
}

TEST(barrel_shifter, width_must_be_power_of_two) {
  EXPECT_THROW(gen::barrel_shifter_circuit(12), std::invalid_argument);
  EXPECT_THROW(gen::barrel_shifter_circuit(1), std::invalid_argument);
}

TEST(decoder, one_hot_exhaustive) {
  const auto net = gen::decoder_circuit(4);
  for (unsigned v = 0; v < 16; ++v) {
    std::vector<bool> in;
    for (unsigned b = 0; b < 4; ++b) {
      in.push_back((v >> b) & 1u);
    }
    const auto out = simulate_pattern(net, in);
    for (unsigned o = 0; o < 16; ++o) {
      EXPECT_EQ(out[o], o == v) << "input " << v << " line " << o;
    }
  }
  EXPECT_THROW(gen::decoder_circuit(0), std::invalid_argument);
}

TEST(priority_encoder, highest_bit_wins) {
  const unsigned w = 16;
  const auto net = gen::priority_encoder_circuit(w);
  std::mt19937_64 rng{9};
  for (int trial = 0; trial < 60; ++trial) {
    const auto req = static_cast<std::uint16_t>(rng());
    std::vector<bool> in;
    for (unsigned i = 0; i < w; ++i) {
      in.push_back((req >> i) & 1u);
    }
    const auto out = simulate_pattern(net, in);
    const bool valid = req != 0;
    EXPECT_EQ(out[4], valid);
    if (valid) {
      const unsigned expected = 15u - static_cast<unsigned>(std::countl_zero(req));
      unsigned index = 0;
      for (unsigned b = 0; b < 4; ++b) {
        index |= static_cast<unsigned>(out[b]) << b;
      }
      EXPECT_EQ(index, expected) << "req " << req;
    }
  }
}

TEST(arbiter, grants_first_request_at_or_after_pointer) {
  const unsigned w = 8;
  const auto net = gen::arbiter_circuit(w);
  std::mt19937_64 rng{13};
  for (int trial = 0; trial < 80; ++trial) {
    const auto req = static_cast<std::uint8_t>(rng());
    const unsigned ptr = static_cast<unsigned>(rng()) % w;
    std::vector<bool> in;
    for (unsigned i = 0; i < w; ++i) {
      in.push_back((req >> i) & 1u);
    }
    for (unsigned b = 0; b < 3; ++b) {
      in.push_back((ptr >> b) & 1u);
    }
    const auto out = simulate_pattern(net, in);

    unsigned expected = w;  // none
    for (unsigned step = 0; step < w; ++step) {
      const unsigned pos = (ptr + step) % w;
      if ((req >> pos) & 1u) {
        expected = pos;
        break;
      }
    }
    for (unsigned g = 0; g < w; ++g) {
      EXPECT_EQ(out[g], g == expected) << "req " << int(req) << " ptr " << ptr;
    }
  }
}

TEST(arbiter, width_must_be_power_of_two) {
  EXPECT_THROW(gen::arbiter_circuit(6), std::invalid_argument);
}

TEST(wide_io, interleaved_majority_reduction) {
  const unsigned inputs = 96;
  const unsigned outputs = 8;
  const auto net = gen::wide_io_circuit(inputs, outputs);
  EXPECT_EQ(net.num_pis(), inputs);
  EXPECT_EQ(net.num_pos(), outputs);

  // Reference: reduce each strided slice exactly like the generator.
  const auto reduce = [](std::vector<bool> layer) {
    while (layer.size() > 1) {
      std::vector<bool> next;
      std::size_t i = 0;
      for (; i + 2 < layer.size(); i += 3) {
        const int ones = layer[i] + layer[i + 1] + layer[i + 2];
        next.push_back(ones >= 2);
      }
      if (i + 1 < layer.size()) {
        next.push_back(layer[i] || layer[i + 1]);
      } else if (i < layer.size()) {
        next.push_back(layer[i]);
      }
      layer = std::move(next);
    }
    return layer.front();
  };

  std::mt19937_64 rng{23};
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> in(inputs);
    for (auto&& b : in) {
      b = (rng() & 1u) != 0;
    }
    const auto out = simulate_pattern(net, in);
    for (unsigned j = 0; j < outputs; ++j) {
      std::vector<bool> slice;
      for (unsigned i = j; i < inputs; i += outputs) {
        slice.push_back(in[i]);
      }
      EXPECT_EQ(out[j], reduce(slice)) << "output " << j;
    }
  }
}

TEST(wide_io, shape_validation) {
  EXPECT_THROW(gen::wide_io_circuit(5, 2), std::invalid_argument);
  EXPECT_THROW(gen::wide_io_circuit(300, 0), std::invalid_argument);
  EXPECT_THROW(gen::wide_io_circuit(1u << 17, 4), std::invalid_argument);
  const auto minimal = gen::wide_io_circuit(3, 1);
  EXPECT_EQ(minimal.num_pis(), 3u);
  EXPECT_EQ(minimal.num_pos(), 1u);
}

}  // namespace
}  // namespace wavemig
