#include "wavemig/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace wavemig {
namespace {

TEST(stats, mean_and_stddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                   std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(sample_stddev({42.0}), 0.0);
}

TEST(stats, geometric_mean) {
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), std::invalid_argument);
}

TEST(stats, power_law_exact_recovery) {
  // y = 7.95 * x^0.9, the paper's Fig. 5 trend, recovered exactly from
  // noiseless samples.
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 100.0; v <= 100000.0; v *= 1.7) {
    x.push_back(v);
    y.push_back(7.95 * std::pow(v, 0.9));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 0.9, 1e-9);
  EXPECT_NEAR(fit.coefficient, 7.95, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit(1000.0), 7.95 * std::pow(1000.0, 0.9), 1e-6);
}

TEST(stats, power_law_with_noise_stays_close) {
  std::mt19937_64 rng{11};
  std::normal_distribution<double> noise{0.0, 0.05};
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 50.0; v <= 50000.0; v *= 1.3) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.1) * std::exp(noise(rng)));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 1.1, 0.05);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(stats, power_law_skips_nonpositive_samples) {
  const auto fit = fit_power_law({0.0, 10.0, 100.0, 1000.0}, {5.0, 10.0, 100.0, 1000.0});
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
}

TEST(stats, power_law_rejects_degenerate_input) {
  EXPECT_THROW(fit_power_law({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({5.0, 5.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
