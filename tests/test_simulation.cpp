#include "wavemig/simulation.hpp"

#include <gtest/gtest.h>

#include <random>

#include "wavemig/gen/arith.hpp"

namespace wavemig {
namespace {

TEST(simulation, words_evaluate_majority) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c));

  const std::vector<std::uint64_t> inputs{0b0011u, 0b0101u, 0b0110u};
  const auto out = simulate_words(net, inputs);
  ASSERT_EQ(out.size(), 1u);
  // Patterns: bit0 (1,1,0)->1, bit1 (1,0,1)->1, bit2 (0,1,1)->1, bit3 (0,0,0)->0.
  EXPECT_EQ(out[0] & 0xFu, 0b0111u);
}

TEST(simulation, complemented_edges_and_pos) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal g = net.create_and(!a, b);
  net.create_po(!g, "nand_ish");
  const auto tts = simulate_truth_tables(net);
  const auto ta = truth_table::nth_var(2, 0);
  const auto tb = truth_table::nth_var(2, 1);
  EXPECT_EQ(tts[0], ~(~ta & tb));
}

TEST(simulation, buffers_and_fanouts_are_transparent) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal g = net.create_xor(a, b);
  const signal buffered = net.create_buffer(net.create_fanout(net.create_buffer(g)));
  net.create_po(buffered);
  net.create_po(g);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], tts[1]);
}

TEST(simulation, constant_outputs) {
  mig_network net;
  net.create_pi();
  net.create_po(constant0, "zero");
  net.create_po(constant1, "one");
  const auto out = simulate_words(net, {0xDEADBEEFull});
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], ~std::uint64_t{0});
}

TEST(simulation, pattern_interface_matches_word_interface) {
  const auto net = gen::ripple_adder_circuit(4);
  // 5 + 11 = 16 -> sum bits 0000, carry-out 1.
  std::vector<bool> inputs(8, false);
  inputs[0] = true;  // a = 0101
  inputs[2] = true;
  inputs[4] = true;  // b = 1011
  inputs[5] = true;
  inputs[7] = true;
  const auto out = simulate_pattern(net, inputs);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_FALSE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_FALSE(out[3]);
  EXPECT_TRUE(out[4]);  // carry
}

TEST(simulation, input_size_validation) {
  mig_network net;
  net.create_pi();
  net.create_pi();
  EXPECT_THROW(simulate_words(net, {1ull}), std::invalid_argument);
  EXPECT_THROW(simulate_pattern(net, {true}), std::invalid_argument);
}

TEST(equivalence, identical_networks_are_equivalent) {
  const auto a = gen::multiplier_circuit(4);
  const auto b = gen::multiplier_circuit(4);
  EXPECT_TRUE(functionally_equivalent(a, b));
}

TEST(equivalence, detects_functional_difference) {
  mig_network a;
  {
    const signal x = a.create_pi();
    const signal y = a.create_pi();
    a.create_po(a.create_and(x, y));
  }
  mig_network b;
  {
    const signal x = b.create_pi();
    const signal y = b.create_pi();
    b.create_po(b.create_or(x, y));
  }
  EXPECT_FALSE(functionally_equivalent(a, b));
}

TEST(equivalence, detects_interface_mismatch) {
  mig_network a;
  a.create_pi();
  a.create_po(constant0);
  mig_network b;
  b.create_pi();
  b.create_pi();
  b.create_po(constant0);
  EXPECT_FALSE(functionally_equivalent(a, b));
}

TEST(equivalence, random_rounds_catch_wiring_swaps_in_wide_circuits) {
  // 36 PIs forces the random-word path (> exact_limit).
  const auto good = gen::ripple_adder_circuit(18);
  mig_network bad;
  {
    auto a = gen::make_input_word(bad, 18, "a");
    auto b = gen::make_input_word(bad, 18, "b");
    std::swap(a[3], a[11]);  // wiring error
    auto [sum, carry] = gen::add_ripple(bad, a, b, constant0);
    gen::make_output_word(bad, sum, "s");
    bad.create_po(carry, "cout");
  }
  EXPECT_FALSE(functionally_equivalent(good, bad));
}

TEST(simulation, adder_matches_integer_arithmetic) {
  const auto net = gen::ripple_adder_circuit(8);
  std::mt19937_64 rng{3};
  for (int round = 0; round < 200; ++round) {
    const unsigned x = static_cast<unsigned>(rng() & 0xFFu);
    const unsigned y = static_cast<unsigned>(rng() & 0xFFu);
    std::vector<bool> in(16);
    for (int i = 0; i < 8; ++i) {
      in[i] = (x >> i) & 1u;
      in[8 + i] = (y >> i) & 1u;
    }
    const auto out = simulate_pattern(net, in);
    unsigned result = 0;
    for (int i = 0; i < 9; ++i) {
      result |= static_cast<unsigned>(out[i]) << i;
    }
    EXPECT_EQ(result, x + y);
  }
}

}  // namespace
}  // namespace wavemig
