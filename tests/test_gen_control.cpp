#include "wavemig/gen/control.hpp"

#include <gtest/gtest.h>

#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(control_circuit, interface_matches_profile) {
  gen::control_profile p;
  p.inputs = 10;
  p.outputs = 7;
  p.state_bits = 2;
  const auto net = gen::control_circuit(p);
  EXPECT_EQ(net.num_pis(), 12u);  // inputs + state bits
  EXPECT_EQ(net.num_pos(), 7u);
}

TEST(control_circuit, deterministic_per_seed) {
  gen::control_profile p;
  p.seed = 42;
  const auto a = gen::control_circuit(p);
  const auto b = gen::control_circuit(p);
  EXPECT_EQ(a.num_majorities(), b.num_majorities());
  EXPECT_TRUE(functionally_equivalent(a, b));

  p.seed = 43;
  const auto c = gen::control_circuit(p);
  EXPECT_FALSE(functionally_equivalent(a, c));
}

TEST(control_circuit, profile_scales_size) {
  gen::control_profile small;
  small.outputs = 4;
  small.cubes_per_output = 4;
  gen::control_profile big = small;
  big.outputs = 16;
  big.cubes_per_output = 12;
  EXPECT_GT(gen::control_circuit(big).num_majorities(),
            gen::control_circuit(small).num_majorities());
}

TEST(control_circuit, stays_shallow) {
  // Controller profiles model wide, shallow random logic: depth must stay
  // far below the arithmetic benchmarks (paper Table II: SASC depth 6).
  gen::control_profile p;
  const auto net = gen::control_circuit(p);
  EXPECT_LE(compute_levels(net).depth, 20u);
}

TEST(control_circuit, rejects_empty_interface) {
  gen::control_profile p;
  p.inputs = 0;
  EXPECT_THROW(gen::control_circuit(p), std::invalid_argument);
  p.inputs = 4;
  p.outputs = 0;
  EXPECT_THROW(gen::control_circuit(p), std::invalid_argument);
}

TEST(fsm_circuit, interface_and_determinism) {
  const auto a = gen::fsm_circuit(3, 5, 11);
  EXPECT_EQ(a.num_pis(), 8u);
  EXPECT_EQ(a.num_pos(), 3u);
  const auto b = gen::fsm_circuit(3, 5, 11);
  EXPECT_TRUE(functionally_equivalent(a, b));
  EXPECT_FALSE(functionally_equivalent(a, gen::fsm_circuit(3, 5, 12)));
}

TEST(fsm_circuit, bounds_checked) {
  EXPECT_THROW(gen::fsm_circuit(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(gen::fsm_circuit(10, 10, 1), std::invalid_argument);
}

TEST(fsm_circuit, outputs_depend_on_state_and_inputs) {
  // A random 9-var function is almost surely non-constant and non-trivial.
  const auto net = gen::fsm_circuit(3, 6, 21);
  const auto tts = simulate_truth_tables(net);
  for (const auto& tt : tts) {
    EXPECT_GT(tt.count_ones(), 0u);
    EXPECT_LT(tt.count_ones(), tt.num_bits());
  }
}

}  // namespace
}  // namespace wavemig
