// Coverage for the serving layer added on top of batch_session: the bounded
// LRU compiled-netlist cache (entry/byte bounds, session_stats counters,
// fingerprint-keyed reuse, eviction racing in-flight requests) and the async
// serving_session API (futures, completion callbacks, drain/close). The
// concurrency tests here run under the TSan CI job alongside
// test_parallel_engine.

#include "wavemig/engine/serving.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/tech_scenario.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> random_waves(std::size_t count, std::size_t pis,
                                            std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::vector<bool>> waves(count, std::vector<bool>(pis));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < pis; ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  return waves;
}

engine::wave_batch batch_for(const mig_network& net, std::size_t count, std::uint64_t seed) {
  return engine::wave_batch::from_waves(random_waves(count, net.num_pis(), seed),
                                        net.num_pis());
}

/// What the session caches for `net`: the balanced + lowered program's
/// resident bytes. Sizing byte bounds from this keeps the tests independent
/// of the lowering's memory layout.
std::size_t program_bytes(const mig_network& net) {
  const auto balanced = insert_buffers(net);
  return engine::compiled_netlist{balanced.net, balanced.schedule}.memory_bytes();
}

engine::packed_wave_result packed_reference(const mig_network& net,
                                            const engine::wave_batch& batch,
                                            unsigned phases) {
  const auto balanced = insert_buffers(net);
  const engine::compiled_netlist compiled{balanced.net, balanced.schedule};
  return engine::run_waves_packed(compiled, batch, phases);
}

// ------------------------------------------------------ bounded cache ---

TEST(cache_eviction, entry_bound_evicts_least_recently_used) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_entries = 2}};

  const auto a = gen::ripple_adder_circuit(4);
  const auto b = gen::ripple_adder_circuit(5);
  const auto c = gen::ripple_adder_circuit(6);
  const auto run = [&](const mig_network& net) {
    (void)session.run(net, batch_for(net, 70, 11), 3);
  };

  run(a);
  run(b);
  EXPECT_EQ(session.stats().entries, 2u);
  EXPECT_EQ(session.stats().evictions, 0u);

  run(a);  // touch: a becomes most recent, so b is the LRU victim
  run(c);
  const auto after_c = session.stats();
  EXPECT_EQ(after_c.entries, 2u);
  EXPECT_EQ(after_c.evictions, 1u);

  run(a);  // still resident
  EXPECT_EQ(session.stats().hits, after_c.hits + 1);
  run(b);  // evicted above: compiles again
  EXPECT_EQ(session.stats().misses, after_c.misses + 1);
}

TEST(cache_eviction, byte_bound_is_a_hard_ceiling) {
  const auto a = gen::ripple_adder_circuit(4);
  const auto b = gen::multiplier_circuit(3);
  const auto c = gen::parity_circuit(10);
  const std::size_t bound = program_bytes(a) + program_bytes(b);

  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_bytes = bound}};

  for (const auto* net : {&a, &b, &c, &a, &c, &b}) {
    (void)session.run(*net, batch_for(*net, 64, 5), 3);
    const auto stats = session.stats();
    EXPECT_LE(stats.bytes, bound);
    EXPECT_LE(stats.entries, 2u);
  }
  EXPECT_GT(session.stats().evictions, 0u);
}

TEST(cache_eviction, oversized_entry_is_evicted_but_still_serves) {
  const auto net = gen::ripple_adder_circuit(6);
  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_bytes = 1}};

  const auto batch = batch_for(net, 150, 3);
  const auto got = session.run(net, batch, 3);
  EXPECT_EQ(got.words, packed_reference(net, batch, 3).words);

  const auto stats = session.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);

  // Nothing stays resident, so a repeat is a miss — bounded means bounded.
  (void)session.run(net, batch, 3);
  EXPECT_EQ(session.stats().misses, 2u);
}

TEST(cache_eviction, fingerprint_is_stable_across_equivalent_networks) {
  // Same structure, different names: one cache entry, second run is a hit.
  mig_network named;
  named.create_po(
      named.create_maj(named.create_pi("x"), named.create_pi("y"), named.create_pi("z")),
      "f");
  mig_network renamed;
  renamed.create_po(renamed.create_maj(renamed.create_pi("p"), renamed.create_pi("q"),
                                       renamed.create_pi("r")),
                    "g");

  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_entries = 4}};
  const auto batch = batch_for(named, 40, 17);
  const auto first = session.run(named, batch, 3);
  const auto second = session.run(renamed, batch, 3);
  EXPECT_EQ(first.words, second.words);
  EXPECT_EQ(session.stats().misses, 1u);
  EXPECT_EQ(session.stats().hits, 1u);
  EXPECT_EQ(session.stats().entries, 1u);
}

TEST(cache_eviction, stats_counters_are_consistent) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_entries = 2}};

  const auto nets = std::vector<mig_network>{gen::ripple_adder_circuit(4),
                                             gen::parity_circuit(8),
                                             gen::multiplier_circuit(3)};
  std::uint64_t runs = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& net : nets) {
      (void)session.run(net, batch_for(net, 64, round + 1), 3);
      ++runs;
      const auto stats = session.stats();
      EXPECT_EQ(stats.hits + stats.misses, runs);
      EXPECT_EQ(stats.entries, session.cached_netlists());
      EXPECT_LE(stats.entries, 2u);
    }
  }
  // Round-robin over 3 circuits with room for 2 thrashes forever.
  EXPECT_GT(session.stats().evictions, 0u);
}

TEST(cache_eviction, compile_reference_survives_eviction) {
  const auto net = gen::ripple_adder_circuit(5);
  engine::parallel_executor executor{2};
  engine::batch_session session{executor, {}, {.max_entries = 1}};

  const auto program = session.compile(net, 3);
  const auto other = gen::multiplier_circuit(3);
  (void)session.run(other, batch_for(other, 64, 9), 3);  // evicts `net`'s entry
  EXPECT_EQ(session.stats().evictions, 1u);

  // The evicted program is still fully usable through our reference.
  const auto batch = batch_for(net, 100, 21);
  const auto got = engine::run_waves_parallel(*program, batch, 3, executor);
  EXPECT_EQ(got.words, packed_reference(net, batch, 3).words);
}

// ----------------------------------------------------- serving session ---

TEST(serving_session, futures_are_bit_identical_to_packed) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor};

  const auto net = gen::multiplier_circuit(4);
  std::vector<engine::wave_batch> batches;
  std::vector<std::future<engine::packed_wave_result>> futures;
  for (int i = 0; i < 6; ++i) {
    batches.push_back(batch_for(net, 100 + 17 * i, 100 + i));
  }
  for (const auto& batch : batches) {
    futures.push_back(serving.submit(net, batch, 3));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto got = futures[i].get();
    const auto want = packed_reference(net, batches[i], 3);
    EXPECT_EQ(got.words, want.words) << "request " << i;
    EXPECT_EQ(got.num_waves, want.num_waves) << "request " << i;
    EXPECT_EQ(got.ticks, want.ticks) << "request " << i;
  }
  // One circuit, six requests, one resident program. Two dispatchers may
  // both miss on the first sight of the circuit (documented batch_session
  // behavior), so the exact hit/miss split is timing-dependent.
  const auto stats = serving.stats();
  EXPECT_EQ(stats.hits + stats.misses, 6u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(serving_session, callback_variant_completes_with_result) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};

  const auto net = gen::ripple_adder_circuit(5);
  const auto batch = batch_for(net, 130, 77);
  const auto want = packed_reference(net, batch, 3);

  std::promise<engine::packed_wave_result> delivered;
  serving.submit(net, batch, 3,
                 [&](engine::packed_wave_result result, std::exception_ptr error) {
                   ASSERT_EQ(error, nullptr);
                   delivered.set_value(std::move(result));
                 });
  EXPECT_EQ(delivered.get_future().get().words, want.words);
}

TEST(serving_session, errors_surface_through_future_and_callback) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};
  const auto net = gen::ripple_adder_circuit(4);

  // phases == 0 is rejected by the packed-path validation on the dispatcher.
  auto bad_phases = serving.submit(net, batch_for(net, 10, 1), 0);
  EXPECT_THROW(bad_phases.get(), std::invalid_argument);

  // PI-count mismatch reaches the callback as an exception_ptr.
  std::promise<std::exception_ptr> seen;
  serving.submit(net, engine::wave_batch{net.num_pis() + 3}, 3,
                 [&](engine::packed_wave_result, std::exception_ptr error) {
                   seen.set_value(error);
                 });
  const auto error = seen.get_future().get();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::invalid_argument);

  // A failed request does not poison the session.
  EXPECT_EQ(serving.submit(net, batch_for(net, 64, 2), 3).get().num_waves, 64u);
}

TEST(serving_session, drain_close_and_submit_after_close) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 2};
  EXPECT_EQ(serving.num_dispatchers(), 2u);

  const auto net = gen::parity_circuit(10);
  std::vector<std::future<engine::packed_wave_result>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(serving.submit(net, batch_for(net, 200, i), 3));
  }
  serving.drain();
  EXPECT_EQ(serving.pending(), 0u);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds{0}), std::future_status::ready);
    EXPECT_EQ(future.get().num_waves, 200u);
  }

  serving.close();
  serving.close();  // idempotent
  EXPECT_EQ(serving.num_dispatchers(), 0u);
  EXPECT_THROW((void)serving.submit(net, batch_for(net, 10, 1), 3), std::runtime_error);
}

TEST(serving_session, callbacks_may_submit_follow_up_requests) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};
  const auto net = gen::ripple_adder_circuit(4);
  const auto batch = batch_for(net, 64, 31);

  std::promise<std::size_t> chained_waves;
  serving.submit(net, batch, 3,
                 [&](engine::packed_wave_result, std::exception_ptr error) {
                   ASSERT_EQ(error, nullptr);
                   serving.submit(net, batch, 3,
                                  [&](engine::packed_wave_result inner, std::exception_ptr) {
                                    chained_waves.set_value(inner.num_waves);
                                  });
                 });
  EXPECT_EQ(chained_waves.get_future().get(), 64u);
  serving.drain();
  EXPECT_EQ(serving.stats().hits + serving.stats().misses, 2u);
}

/// The TSan target of the cache work: many producers hammering a session
/// whose cache holds a single entry, so every other request evicts the
/// program another request may be executing right now. Refcounting must
/// keep every in-flight run on its own live program.
TEST(serving_session, eviction_races_in_flight_requests) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {.max_entries = 1}, 2};

  struct workload {
    mig_network net;
    engine::wave_batch batch;
    std::vector<std::uint64_t> want;
  };
  std::vector<workload> workloads;
  for (const auto& net : {gen::ripple_adder_circuit(4), gen::multiplier_circuit(3),
                          gen::parity_circuit(9)}) {
    auto batch = batch_for(net, 150, net.num_pis());
    auto want = packed_reference(net, batch, 3).words;
    workloads.push_back({net, std::move(batch), std::move(want)});
  }

  constexpr int per_thread = 9;
  std::atomic<int> mismatches{0};
  const auto hammer = [&](unsigned offset) {
    std::vector<std::future<engine::packed_wave_result>> futures;
    for (int i = 0; i < per_thread; ++i) {
      const auto& w = workloads[(offset + i) % workloads.size()];
      futures.push_back(serving.submit(w.net, w.batch, 3));
    }
    for (int i = 0; i < per_thread; ++i) {
      const auto& w = workloads[(offset + i) % workloads.size()];
      if (futures[i].get().words != w.want) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::thread t0{[&] { hammer(0); }};
  std::thread t1{[&] { hammer(1); }};
  std::thread t2{[&] { hammer(2); }};
  t0.join();
  t1.join();
  t2.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = serving.stats();
  EXPECT_EQ(stats.hits + stats.misses, 3u * per_thread);
  EXPECT_LE(stats.entries, 1u);
  EXPECT_GT(stats.evictions, 0u);
}

// ------------------------------------------------ dispatcher coalescing ---

TEST(serving_coalescing, many_small_same_program_requests_fuse_and_stay_exact) {
  // A single-worker pool and a single dispatcher make coalescing
  // deterministic: with the worker parked below, no exec unit can retire, so
  // the dispatcher stalls on the in-flight cap while the burst piles up in
  // the queue — the requests still waiting are then guaranteed to arrive in
  // one gulp and fuse.
  engine::parallel_executor executor{1};
  engine::serving_session serving{executor, {}, {}, 1};

  const auto net = std::make_shared<const mig_network>(gen::multiplier_circuit(4));
  // Warm the cache (while the worker is still free) so the burst is pure-hit.
  serving.submit(net, batch_for(*net, 64, 9000), 3).get();

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  executor.submit([released](unsigned) { released.wait(); });

  constexpr int burst = 24;
  std::vector<engine::wave_batch> batches;
  std::vector<std::future<engine::packed_wave_result>> futures;
  batches.reserve(burst);
  for (int i = 0; i < burst; ++i) {
    // Small (a few chunks at most) so they qualify for fusing, with uneven
    // tails to exercise per-member masking inside the fused block.
    batches.push_back(batch_for(*net, 30 + 19 * (i % 7), 9100 + i));
  }
  for (const auto& batch : batches) {
    futures.push_back(serving.submit(net, batch, 3));
  }
  release.set_value();

  for (int i = 0; i < burst; ++i) {
    const auto got = futures[i].get();
    const auto want = packed_reference(*net, batches[i], 3);
    EXPECT_EQ(got.words, want.words) << "request " << i;
    EXPECT_EQ(got.num_waves, want.num_waves) << "request " << i;
    EXPECT_EQ(got.ticks, want.ticks) << "request " << i;
  }
  serving.drain();

  const auto metrics = serving.metrics();
  EXPECT_EQ(metrics.requests_accepted, 1u + burst);
  EXPECT_EQ(metrics.requests_completed, 1u + burst);
  EXPECT_EQ(metrics.requests_failed, 0u);
  EXPECT_GT(metrics.coalesced_requests, 0u);
  EXPECT_GT(metrics.fused_passes, 0u);
  EXPECT_GT(metrics.gulps, 0u);
  EXPECT_GE(metrics.max_gulp, 2u);
  // Fused passes execute fewer pool submissions than requests.
  EXPECT_LT(metrics.fused_passes + metrics.singleton_passes, 1u + burst);
  // Per-request compile bookkeeping is preserved under coalescing.
  const auto stats = serving.stats();
  EXPECT_EQ(stats.hits + stats.misses, 1u + burst);
}

TEST(serving_coalescing, mixed_programs_in_one_gulp_group_by_program) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};

  const auto adder = std::make_shared<const mig_network>(gen::ripple_adder_circuit(5));
  const auto parity = std::make_shared<const mig_network>(gen::parity_circuit(9));
  serving.submit(adder, batch_for(*adder, 64, 40), 3).get();
  serving.submit(parity, batch_for(*parity, 64, 41), 3).get();

  std::vector<std::future<engine::packed_wave_result>> futures;
  std::vector<engine::wave_batch> batches;
  std::vector<const mig_network*> nets;
  for (int i = 0; i < 16; ++i) {
    const auto& net = (i % 2 == 0) ? adder : parity;
    batches.push_back(batch_for(*net, 50 + 13 * i, 4000 + i));
    nets.push_back(net.get());
    futures.push_back(serving.submit(net, batches.back(), 3));
  }
  for (int i = 0; i < 16; ++i) {
    const auto want = packed_reference(*nets[i], batches[i], 3);
    EXPECT_EQ(futures[i].get().words, want.words) << "request " << i;
  }
  serving.drain();
  // Two distinct programs never share a fused pass; both still complete.
  EXPECT_EQ(serving.metrics().requests_completed, 18u);
  EXPECT_EQ(serving.metrics().requests_failed, 0u);
  EXPECT_EQ(serving.stats().entries, 2u);
}

TEST(serving_coalescing, a_bad_request_fails_alone_inside_a_gulp) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};

  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  serving.submit(net, batch_for(*net, 64, 70), 3).get();

  // A PI-width mismatch sandwiched between healthy small requests: the
  // dispatcher must fail it at prepare time and still fuse/run the rest.
  std::vector<std::future<engine::packed_wave_result>> good;
  std::vector<engine::wave_batch> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(batch_for(*net, 40 + i, 7100 + i));
  }
  good.push_back(serving.submit(net, batches[0], 3));
  good.push_back(serving.submit(net, batches[1], 3));
  auto bad = serving.submit(net, engine::wave_batch{net->num_pis() + 2}, 3);
  good.push_back(serving.submit(net, batches[2], 3));
  good.push_back(serving.submit(net, batches[3], 3));

  EXPECT_THROW(bad.get(), std::invalid_argument);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(good[i].get().words, packed_reference(*net, batches[i], 3).words)
        << "request " << i;
  }
  serving.drain();
  EXPECT_EQ(serving.metrics().requests_failed, 1u);
  EXPECT_EQ(serving.metrics().requests_completed, 5u);
}

TEST(serving_coalescing, shared_ptr_submit_skips_the_deep_copy) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};

  const auto net = std::make_shared<const mig_network>(gen::multiplier_circuit(3));
  const auto batch = batch_for(*net, 120, 55);
  const auto want = packed_reference(*net, batch, 3);

  // Future and callback shared_ptr overloads, plus the packed variant.
  EXPECT_EQ(serving.submit(net, batch, 3).get().words, want.words);
  std::promise<engine::packed_wave_result> delivered;
  serving.submit(net, batch, 3,
                 [&](engine::packed_wave_result result, std::exception_ptr error) {
                   ASSERT_EQ(error, nullptr);
                   delivered.set_value(std::move(result));
                 });
  EXPECT_EQ(delivered.get_future().get().words, want.words);

  const auto packed_batch = batch_for(*net, 90, 56);
  std::vector<std::uint64_t> planes(packed_batch.num_chunks() * net->num_pis());
  for (std::size_t i = 0; i < net->num_pis(); ++i) {
    std::copy_n(packed_batch.plane(i), packed_batch.num_chunks(),
                planes.begin() + static_cast<std::ptrdiff_t>(i * packed_batch.num_chunks()));
  }
  EXPECT_EQ(
      serving.submit_packed(net, std::move(planes), packed_batch.num_waves(), 3).get().words,
      packed_reference(*net, packed_batch, 3).words);
  serving.drain();
  EXPECT_EQ(serving.stats().hits + serving.stats().misses, 3u);
  EXPECT_EQ(serving.stats().entries, 1u);
}

TEST(serving_coalescing, queue_wait_samples_are_recorded_and_taken) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};
  const auto net = std::make_shared<const mig_network>(gen::parity_circuit(8));
  for (int i = 0; i < 6; ++i) {
    (void)serving.submit(net, batch_for(*net, 80, 600 + i), 3);
  }
  serving.drain();
  const auto samples = serving.take_queue_wait_samples();
  EXPECT_EQ(samples.size(), 6u);
  for (const double ms : samples) {
    EXPECT_GE(ms, 0.0);
  }
  // take_* is destructive: the reservoir restarts empty.
  EXPECT_TRUE(serving.take_queue_wait_samples().empty());
}

/// The TSan target of the executor work: concurrent hinted parallel streams
/// and coalesced serving submissions sharing one work-stealing pool, so
/// steals, group completions, and dispatcher gulps all interleave.
TEST(serving_coalescing, streams_and_serving_share_the_stealing_pool) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {}, 2};

  const auto net = std::make_shared<const mig_network>(gen::multiplier_circuit(4));
  const auto balanced = insert_buffers(*net);
  const engine::compiled_netlist compiled{balanced.net, balanced.schedule};

  std::atomic<int> failures{0};
  const auto stream_thread = [&](std::uint64_t seed) {
    const auto waves = random_waves(700, net->num_pis(), seed);
    const auto want = engine::run_waves_packed(
        compiled, engine::wave_batch::from_waves(waves, net->num_pis()), 3);
    engine::parallel_wave_stream stream{compiled, 3, executor, waves.size()};
    for (int round = 0; round < 3; ++round) {
      for (const auto& wave : waves) {
        stream.push(wave);
      }
      if (stream.finish().words != want.words) {
        failures.fetch_add(1);
      }
    }
  };
  const auto serving_thread = [&](std::uint64_t seed) {
    std::vector<engine::wave_batch> batches;
    std::vector<std::future<engine::packed_wave_result>> futures;
    for (int i = 0; i < 12; ++i) {
      batches.push_back(batch_for(*net, 40 + 11 * i, seed + i));
      futures.push_back(serving.submit(net, batches.back(), 3));
    }
    for (int i = 0; i < 12; ++i) {
      if (futures[i].get().words != packed_reference(*net, batches[i], 3).words) {
        failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(stream_thread, 8801);
  threads.emplace_back(stream_thread, 8802);
  threads.emplace_back(serving_thread, 8900);
  threads.emplace_back(serving_thread, 9000);
  for (auto& t : threads) {
    t.join();
  }
  serving.drain();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(serving.metrics().requests_failed, 0u);
  EXPECT_EQ(serving.metrics().requests_completed, 24u);
}

// -------------------------------------------------- scenario separation ---

/// One session serving the same netlist untagged and under two scenarios:
/// every request computes the same function (bit-identical words), but each
/// scenario occupies its own cache entry — the cache key carries the
/// scenario fingerprint, so requests never hit (or coalesce into) another
/// scenario's program. One dispatcher keeps the hit/miss accounting
/// deterministic.
TEST(serving_scenarios, same_netlist_per_scenario_programs_stay_separate) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};

  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(6));
  const auto batch = batch_for(*net, 100, 17);
  const auto reference = packed_reference(*net, batch, 3);

  std::vector<std::future<engine::packed_wave_result>> futures;
  for (int round = 0; round < 3; ++round) {
    futures.push_back(serving.submit(net, batch, 3));
    futures.push_back(serving.submit(net, batch, 3, tech_scenario::swd()));
    futures.push_back(serving.submit(net, batch, 3, tech_scenario::fdm_swd()));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().words, reference.words);
  }

  // One program per scenario tag (plus the untagged one), not per request.
  const auto stats = serving.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 6u);
}

/// Zero-copy packed submission with a scenario: plane-major words adopted
/// wholesale, evaluated on the scenario-prepared program, sliced back
/// bit-identical to the untagged packed reference.
TEST(serving_scenarios, packed_scenario_submission_matches_the_reference) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};

  const auto net = std::make_shared<const mig_network>(gen::random_mig({10, 90, 0.5, 7, 4141}));
  const auto batch = batch_for(*net, 130, 23);
  const auto reference = packed_reference(*net, batch, 3);

  std::vector<std::uint64_t> planes(batch.num_chunks() * net->num_pis());
  for (std::size_t i = 0; i < net->num_pis(); ++i) {
    std::copy_n(batch.plane(i), batch.num_chunks(),
                planes.begin() + static_cast<std::ptrdiff_t>(i * batch.num_chunks()));
  }

  const auto got =
      serving.submit_packed(net, std::move(planes), batch.num_waves(), 3,
                            tech_scenario::nml())
          .get();
  EXPECT_EQ(got.words, reference.words);
  EXPECT_EQ(got.num_waves, reference.num_waves);
}


// ------------------------------------------------- policies + hardening ---

/// The typed-error taxonomy: each refusal class is catchable as its own
/// type while keeping the base its untyped predecessor threw, so both old
/// and new catch sites work.
TEST(serving_policies, typed_errors_carry_their_class) {
  engine::parallel_executor executor{1};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  serving.submit(net, batch_for(*net, 64, 1), 3).get();  // warm the cache
  serving.drain();

  // Admission: park the worker so one request pins the backlog at 1.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  executor.submit([released](unsigned) { released.wait(); });
  auto held = serving.submit(net, batch_for(*net, 64, 2), 3);
  serving.set_admission_limit(1);
  EXPECT_EQ(serving.admission_limit(), 1u);
  try {
    (void)serving.submit(net, batch_for(*net, 64, 3), 3);
    FAIL() << "admission bound did not reject";
  } catch (const engine::admission_rejected_error& e) {
    EXPECT_NE(std::string{e.what()}.find("admission rejected"), std::string::npos);
  }
  EXPECT_EQ(serving.metrics().requests_rejected, 1u);
  serving.set_admission_limit(0);
  release.set_value();
  EXPECT_EQ(held.get().num_waves, 64u);

  // Closed session: typed, and still a runtime_error for legacy catches.
  serving.close();
  EXPECT_THROW((void)serving.submit(net, batch_for(*net, 10, 4), 3),
               engine::session_closed_error);
  EXPECT_THROW((void)serving.submit(net, batch_for(*net, 10, 5), 3), std::runtime_error);
}

/// A deadline already in the past fails at dispatcher pickup with the typed
/// error — the request never executes — and is counted as expired.
TEST(serving_policies, expired_deadlines_fail_typed_without_executing) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  serving.submit(net, batch_for(*net, 64, 1), 3).get();

  engine::submit_options opts;
  opts.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds{1};
  auto doomed = serving.submit(net, batch_for(*net, 64, 2), 3, opts);
  EXPECT_THROW(doomed.get(), engine::deadline_expired_error);
  serving.drain();  // the failure is retired (and counted) after the future

  const auto metrics = serving.metrics();
  EXPECT_EQ(metrics.requests_expired, 1u);
  EXPECT_EQ(metrics.requests_failed, 1u);  // expired is a subset of failed
  EXPECT_EQ(metrics.requests_completed, 1u);
  serving.close();
}

/// Wedges the lone dispatcher behind the in-flight pass cap (4 with one
/// worker): five too-wide-to-coalesce requests fill the cap and block the
/// fifth launch, so everything submitted afterwards queues into one gulp.
/// Returns the futures of the blockers; `release` frees the worker.
std::vector<std::future<engine::packed_wave_result>> wedge_dispatcher(
    engine::serving_session& serving, engine::parallel_executor& executor,
    const std::shared_ptr<const mig_network>& net, std::shared_future<void> released) {
  executor.submit([released](unsigned) { released.wait(); });
  const std::uint64_t gulps_before = serving.metrics().gulps;
  std::vector<std::future<engine::packed_wave_result>> blockers;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    blockers.push_back(serving.submit(net, batch_for(*net, 520, 7000 + i), 3));
    while (serving.metrics().gulps < gulps_before + i) {
      std::this_thread::yield();
    }
  }
  return blockers;
}

/// Priority orders one gulp: lower bytes dispatch (and with one worker,
/// complete) first; ties stay FIFO.
TEST(serving_policies, priority_orders_the_gulp) {
  engine::parallel_executor executor{1};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  serving.submit(net, batch_for(*net, 64, 1), 3).get();
  serving.drain();

  std::promise<void> release;
  auto blockers = wedge_dispatcher(serving, executor, net, release.get_future().share());

  std::mutex order_mutex;
  std::vector<int> order;
  const auto record = [&](int tag) {
    return [&, tag](engine::packed_wave_result, std::exception_ptr error) {
      ASSERT_EQ(error, nullptr);
      std::lock_guard<std::mutex> lock{order_mutex};
      order.push_back(tag);
    };
  };
  const auto submit_with_priority = [&](int tag, std::uint8_t priority) {
    engine::submit_options opts;
    opts.priority = priority;
    serving.submit(net, batch_for(*net, 40 + tag, 100 + tag), 3, opts, record(tag));
  };
  submit_with_priority(0, 200);
  submit_with_priority(1, 10);
  submit_with_priority(2, 200);
  submit_with_priority(3, 10);

  release.set_value();
  for (auto& blocker : blockers) {
    (void)blocker.get();
  }
  serving.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 0, 2}));
  serving.close();
}

/// Within one priority class a gulp round-robins across client ids — one
/// request per client per turn, FIFO within a client — so a flooding client
/// cannot starve the rest.
TEST(serving_policies, clients_round_robin_within_a_priority_class) {
  engine::parallel_executor executor{1};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  serving.submit(net, batch_for(*net, 64, 1), 3).get();
  serving.drain();

  std::promise<void> release;
  auto blockers = wedge_dispatcher(serving, executor, net, release.get_future().share());

  std::mutex order_mutex;
  std::vector<int> order;
  const auto submit_for_client = [&](int tag, std::uint64_t client) {
    engine::submit_options opts;
    opts.client_id = client;
    serving.submit(net, batch_for(*net, 40 + tag, 200 + tag), 3, opts,
                   [&, tag](engine::packed_wave_result, std::exception_ptr error) {
                     ASSERT_EQ(error, nullptr);
                     std::lock_guard<std::mutex> lock{order_mutex};
                     order.push_back(tag);
                   });
  };
  // Client 1 floods three requests before client 2's lone request arrives.
  submit_for_client(0, 1);
  submit_for_client(1, 1);
  submit_for_client(2, 1);
  submit_for_client(3, 2);

  release.set_value();
  for (auto& blocker : blockers) {
    (void)blocker.get();
  }
  serving.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
  serving.close();
}

/// Hostile packed shapes surface as invalid_request_error (which is still an
/// invalid_argument) through the future — never as a crash, never from
/// submit itself.
TEST(serving_hardening, hostile_packed_shapes_fail_typed) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::size_t pis = net->num_pis();

  // Zero waves.
  EXPECT_THROW(serving.submit_packed(net, {}, 0, 3).get(), engine::invalid_request_error);
  // Words inconsistent with the wave count (3 words for one chunk of 9 PIs).
  EXPECT_THROW(serving.submit_packed(net, std::vector<std::uint64_t>(3, 0), 100, 3).get(),
               engine::invalid_request_error);
  // A plane count that divides evenly but yields the wrong chunk count.
  EXPECT_THROW(
      serving.submit_packed(net, std::vector<std::uint64_t>(pis * 3, 0), 100, 3).get(),
      std::invalid_argument);

  // Stray bits above num_waves: rejected under the strict policy...
  std::vector<std::uint64_t> dirty(pis, 0);
  dirty[2] = ~std::uint64_t{0};  // waves 0..9 valid, bits 10..63 stray
  engine::submit_options strict;
  strict.reject_stray_tail_bits = true;
  try {
    serving.submit_packed(net, dirty, 10, 3, strict).get();
    FAIL() << "strict tail validation did not reject";
  } catch (const engine::invalid_request_error& e) {
    EXPECT_NE(std::string{e.what()}.find("stray bits"), std::string::npos);
  }

  // ...and masked to the trusted default otherwise: identical to clean words.
  std::vector<std::uint64_t> clean = dirty;
  clean[2] &= (std::uint64_t{1} << 10) - 1;
  const auto masked = serving.submit_packed(net, dirty, 10, 3).get();
  const auto reference = serving.submit_packed(net, clean, 10, 3).get();
  EXPECT_EQ(masked.words, reference.words);
  serving.drain();  // failures are retired (and counted) after their futures
  EXPECT_EQ(serving.metrics().requests_failed, 4u);
  serving.close();
}

/// close() racing an in-flight coalesced pass whose callbacks resubmit:
/// every primary callback fires exactly once, every follow-up either lands
/// before the close and completes, or is refused with the typed error —
/// and close() returns with nothing left pending.
TEST(serving_shutdown, close_races_resubmitting_callbacks_from_fused_passes) {
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  for (int round = 0; round < 10; ++round) {
    engine::parallel_executor executor{2};
    auto serving = std::make_unique<engine::serving_session>(
        executor, buffer_insertion_options{}, engine::cache_limits{}, 1u);
    serving->submit(net, batch_for(*net, 64, 1), 3).get();

    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    executor.submit([released](unsigned) { released.wait(); });
    executor.submit([released](unsigned) { released.wait(); });

    constexpr int burst = 16;
    std::atomic<int> primaries{0};
    std::atomic<int> resubmitted{0};
    std::atomic<int> refused{0};
    std::atomic<int> follow_ups_done{0};
    for (int i = 0; i < burst; ++i) {
      serving->submit(
          net, batch_for(*net, 30 + i, 5000 + round * 100 + i), 3,
          [&, i](engine::packed_wave_result, std::exception_ptr error) {
            ++primaries;
            if (error) {
              return;
            }
            try {
              serving->submit(net, batch_for(*net, 20 + i, 6000 + i), 3,
                              [&](engine::packed_wave_result, std::exception_ptr) {
                                ++follow_ups_done;
                              });
              ++resubmitted;
            } catch (const engine::session_closed_error&) {
              ++refused;
            }
          });
    }

    release.set_value();
    serving->close();  // races the fused passes and their resubmissions

    EXPECT_EQ(primaries.load(), burst);
    EXPECT_EQ(resubmitted.load() + refused.load(), burst);
    // close() drains everything it accepted: accepted follow-ups completed.
    EXPECT_EQ(follow_ups_done.load(), resubmitted.load());
    EXPECT_EQ(serving->pending(), 0u);
    const auto metrics = serving->metrics();
    EXPECT_EQ(metrics.requests_completed,
              1u + static_cast<std::uint64_t>(burst + resubmitted.load()));
    EXPECT_EQ(metrics.requests_failed, 0u);
  }
}

}  // namespace
}  // namespace wavemig
