#include "wavemig/timing.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/pipeline.hpp"

namespace wavemig {
namespace {

/// One majority gate with no inverters anywhere.
mig_network inverter_free() {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c));
  return net;
}

/// A majority gate fed through an unavoidable inverter: both the gate and
/// its complemented source feed the outputs, so no polarity flip removes it.
mig_network inverter_bound() {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal d = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  net.create_po(m, "pos");                        // m in positive polarity
  net.create_po(net.create_maj(!m, c, d), "g");   // and complemented into a gate
  return net;
}

TEST(timing, inverter_free_stage_is_one_majority) {
  const auto net = inverter_free();
  const auto qca = analyze_stage_timing(net, technology::qca());
  // One MAJ, no inverter: 2 cells x 1.2 ps.
  EXPECT_DOUBLE_EQ(qca.required_phase_delay_ns, 0.0012 * 2.0);
  EXPECT_FALSE(qca.critical_has_inverter);
}

TEST(timing, inverter_adds_to_the_critical_stage) {
  const auto net = inverter_bound();
  const auto report = analyze_stage_timing(net, technology::qca());
  // Worst stage: MAJ (2) + INV (7) = 9 cells.
  EXPECT_DOUBLE_EQ(report.required_phase_delay_ns, 0.0012 * 9.0);
  EXPECT_TRUE(report.critical_has_inverter);
}

TEST(timing, polarity_optimization_can_clear_the_critical_stage) {
  // A gate with many complemented consumers: without optimization the
  // stage carries an inverter; flipping the driver removes them all.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, !c);
  net.create_po(net.create_maj(!m, a, b), "f");
  net.create_po(net.create_maj(!m, b, c), "g");
  net.create_po(net.create_maj(!m, a, c), "h");
  net.create_po(!m, "i");

  const auto raw = analyze_stage_timing(net, technology::qca(), 3, false);
  const auto optimized = analyze_stage_timing(net, technology::qca(), 3, true);
  EXPECT_LE(optimized.required_phase_delay_ns, raw.required_phase_delay_ns);
}

TEST(timing, qca_phase_assumption_is_optimistic_with_inverters) {
  // The paper's implied 4 ps QCA phase cannot fit MAJ+INV (10.8 ps).
  const auto net = inverter_bound();
  const auto report = analyze_stage_timing(net, technology::qca());
  EXPECT_LT(report.slack_ratio, 1.0);
  EXPECT_LT(report.effective_wp_throughput_mops, 83333.33);
}

TEST(timing, swd_uniform_delays_cost_one_extra_cell) {
  // SWD: every relative delay is 1, so the worst stage is 2 cells when an
  // inverter is present and 1 otherwise.
  const auto free_net = inverter_free();
  const auto bound_net = inverter_bound();
  EXPECT_DOUBLE_EQ(analyze_stage_timing(free_net, technology::swd()).required_phase_delay_ns,
                   0.42);
  EXPECT_DOUBLE_EQ(analyze_stage_timing(bound_net, technology::swd()).required_phase_delay_ns,
                   0.84);
}

TEST(timing, pipelined_netlists_report_consistent_throughput) {
  const auto net = gen::multiplier_circuit(4);
  const auto piped = wave_pipeline(net);
  for (const auto& tech : {technology::swd(), technology::qca(), technology::nml()}) {
    const auto report = analyze_stage_timing(piped.net, tech);
    EXPECT_GT(report.required_phase_delay_ns, 0.0) << tech.name;
    EXPECT_GT(report.effective_wp_throughput_mops, 0.0) << tech.name;
    EXPECT_DOUBLE_EQ(report.effective_wp_throughput_mops,
                     1e3 / (3.0 * report.required_phase_delay_ns))
        << tech.name;
  }
}

TEST(timing, phases_scale_throughput) {
  const auto net = inverter_free();
  const auto p3 = analyze_stage_timing(net, technology::nml(), 3);
  const auto p6 = analyze_stage_timing(net, technology::nml(), 6);
  EXPECT_DOUBLE_EQ(p3.effective_wp_throughput_mops, 2.0 * p6.effective_wp_throughput_mops);
  EXPECT_THROW(analyze_stage_timing(net, technology::nml(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
