// Technology scenario engine: the scenario registry, the semantic
// fingerprint, the loss-budget repeater pass, the scenario-derived fan-out
// precedence of the pipeline, scenario metrics/timing, FDM clock metadata,
// and the scenario-tagged program cache of batch_session. The differential
// per-scenario pins live in test_differential.cpp.

#include "wavemig/tech_scenario.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/loss_budget.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/timing.hpp"

namespace wavemig {
namespace {

// ----------------------------------------------------------- registry ---

TEST(scenario_registry, by_name_finds_every_builtin_case_insensitively) {
  EXPECT_EQ(tech_scenario::by_name("SWD").name, "SWD");
  EXPECT_EQ(tech_scenario::by_name("swd").name, "SWD");
  EXPECT_EQ(tech_scenario::by_name("qCa").name, "QCA");
  EXPECT_EQ(tech_scenario::by_name("nml").name, "NML");
  EXPECT_EQ(tech_scenario::by_name("fdm-swd").name, "FDM-SWD");
  for (const auto& name : tech_scenario::names()) {
    EXPECT_EQ(tech_scenario::by_name(name).name, name);
  }
}

TEST(scenario_registry, unknown_name_is_a_typed_error_listing_the_known_names) {
  try {
    (void)tech_scenario::by_name("CMOS");
    FAIL() << "expected unknown_technology_error";
  } catch (const unknown_technology_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CMOS"), std::string::npos);
    EXPECT_NE(what.find("FDM-SWD"), std::string::npos);
  }
  // The typed error is also an invalid_argument, so generic handlers work.
  EXPECT_THROW((void)tech_scenario::by_name(""), std::invalid_argument);
}

TEST(scenario_registry, technology_by_name_mirrors_the_scenario_registry) {
  EXPECT_EQ(technology::by_name("swd").name, "SWD");
  EXPECT_EQ(technology::by_name("QCA").name, "QCA");
  EXPECT_EQ(technology::by_name("Nml").name, "NML");
  EXPECT_THROW((void)technology::by_name("FDM-SWD"), unknown_technology_error);
  EXPECT_EQ(technology::names().size(), 3u);
}

TEST(scenario_registry, builtin_axes) {
  const auto swd = tech_scenario::swd();
  EXPECT_EQ(swd.fanout_limit, std::optional<unsigned>{3});
  EXPECT_EQ(swd.fdm_lanes, 1u);
  EXPECT_FALSE(swd.max_unregenerated_levels());  // lossless

  EXPECT_EQ(tech_scenario::qca().fanout_limit, std::optional<unsigned>{4});
  EXPECT_EQ(tech_scenario::nml().fanout_limit, std::optional<unsigned>{2});

  const auto fdm = tech_scenario::fdm_swd();
  EXPECT_EQ(fdm.fanout_limit, std::optional<unsigned>{2});
  EXPECT_EQ(fdm.fdm_lanes, 4u);
  ASSERT_TRUE(fdm.max_unregenerated_levels());
  EXPECT_EQ(*fdm.max_unregenerated_levels(), 10u);  // floor(2.5 / 0.25)
}

TEST(scenario_registry, budget_is_clamped_to_one_level) {
  tech_scenario s = tech_scenario::swd();
  s.attenuation_db_per_level = 5.0;
  s.regeneration_db = 2.0;  // floor(0.4) = 0 -> clamped
  ASSERT_TRUE(s.max_unregenerated_levels());
  EXPECT_EQ(*s.max_unregenerated_levels(), 1u);
}

// --------------------------------------------------------- fingerprint ---

TEST(scenario_fingerprint, builtins_are_distinct_nonzero_and_stable) {
  std::vector<std::uint64_t> prints;
  for (const auto& name : tech_scenario::names()) {
    const auto s = tech_scenario::by_name(name);
    EXPECT_NE(s.fingerprint(), 0u) << name;       // 0 is the "no scenario" tag
    EXPECT_EQ(s.fingerprint(), s.fingerprint());  // deterministic
    prints.push_back(s.fingerprint());
  }
  for (std::size_t i = 0; i < prints.size(); ++i) {
    for (std::size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]);
    }
  }
}

TEST(scenario_fingerprint, every_semantic_axis_changes_the_fingerprint) {
  const auto base = tech_scenario::swd();
  const auto h = base.fingerprint();

  tech_scenario s = base;
  s.fanout_limit = 4;
  EXPECT_NE(s.fingerprint(), h);

  s = base;
  s.fanout_limit.reset();
  EXPECT_NE(s.fingerprint(), h);

  s = base;
  s.fdm_lanes = 2;
  EXPECT_NE(s.fingerprint(), h);

  s = base;
  s.attenuation_db_per_level = 0.1;
  EXPECT_NE(s.fingerprint(), h);

  s = base;
  s.repeater.energy += 1.0;
  EXPECT_NE(s.fingerprint(), h);

  s = base;
  s.tech.phase_delay_ns *= 2.0;
  EXPECT_NE(s.fingerprint(), h);
}

// ---------------------------------------------------------- loss budget ---

std::uint32_t worst_run(const mig_network& net) {
  // Independent reimplementation of the unregenerated-run metric.
  std::vector<std::uint32_t> run(net.num_nodes(), 0);
  std::uint32_t worst = 0;
  net.foreach_node([&](node_index n) {
    if (!net.is_majority(n) && !net.is_fanout_gate(n)) {
      return;
    }
    for (const signal f : net.fanins(n)) {
      if (!net.is_constant(f.index())) {
        run[n] = std::max(run[n], run[f.index()]);
      }
    }
    run[n] += 1;
    worst = std::max(worst, run[n]);
  });
  return worst;
}

TEST(loss_budget, enforces_the_budget_and_preserves_the_function) {
  const auto net = gen::random_mig({10, 150, 0.5, 8, 4242});
  for (const unsigned budget : {1u, 2u, 5u}) {
    const auto result = enforce_loss_budget(net, {budget});
    EXPECT_LE(result.max_run_after, budget) << "budget " << budget;
    EXPECT_LE(worst_run(result.net), budget) << "budget " << budget;
    EXPECT_TRUE(functionally_equivalent(net, result.net)) << "budget " << budget;
    if (result.max_run_before > budget) {
      EXPECT_GT(result.repeaters_added, 0u) << "budget " << budget;
    }
  }
}

TEST(loss_budget, pass_is_idempotent) {
  const auto net = gen::random_mig({9, 120, 0.6, 6, 99});
  const loss_budget_options options{2u};
  const auto once = enforce_loss_budget(net, options);
  ASSERT_GT(once.repeaters_added, 0u);
  const auto twice = enforce_loss_budget(once.net, options);
  EXPECT_EQ(twice.repeaters_added, 0u);
  EXPECT_EQ(twice.net.num_nodes(), once.net.num_nodes());
}

TEST(loss_budget, nullopt_budget_copies_through_reporting_the_run) {
  const auto net = gen::random_mig({8, 80, 0.5, 6, 7});
  const auto result = enforce_loss_budget(net, {});
  EXPECT_EQ(result.repeaters_added, 0u);
  EXPECT_EQ(result.net.num_nodes(), net.num_nodes());
  EXPECT_EQ(result.max_run_before, worst_run(net));
  EXPECT_EQ(result.max_run_after, result.max_run_before);
}

TEST(loss_budget, zero_budget_throws) {
  const auto net = gen::ripple_adder_circuit(2);
  EXPECT_THROW((void)enforce_loss_budget(net, {0u}), std::invalid_argument);
}

TEST(loss_budget, per_edge_repeaters_preserve_fanout_degrees) {
  // Restrict first, then enforce a tight budget: the combined net must
  // still respect the fan-out limit (repeaters are per edge, never shared).
  const auto net = gen::random_mig({10, 140, 0.4, 8, 555});
  const auto restricted = restrict_fanout(net, {3, true});
  const std::size_t degree_before = max_fanout_degree(restricted.net);
  const auto result = enforce_loss_budget(restricted.net, {1u});
  ASSERT_GT(result.repeaters_added, 0u);
  EXPECT_LE(max_fanout_degree(result.net), degree_before);
}

// -------------------------------------------- pipeline scenario threading ---

TEST(pipeline_scenario, default_derives_the_limit_from_the_swd_scenario) {
  // The default pipeline_options must behave exactly like the historical
  // explicit fanout_limit = 3 (the SWD scenario's capability).
  const auto net = gen::random_mig({10, 120, 0.5, 8, 31});
  const auto derived = wave_pipeline(net);
  pipeline_options explicit_three;
  explicit_three.fanout_limit = 3;
  const auto exact = wave_pipeline(net, explicit_three);
  EXPECT_EQ(derived.fogs_added, exact.fogs_added);
  EXPECT_EQ(derived.final_stats.components, exact.final_stats.components);
  EXPECT_EQ(derived.repeater_buffers_added, 0u);  // SWD is lossless
  EXPECT_LE(max_fanout_degree(derived.net), 3u);
}

TEST(pipeline_scenario, explicit_limit_overrides_the_scenario) {
  const auto net = gen::random_mig({10, 120, 0.5, 8, 31});
  pipeline_options opts;
  opts.scenario = tech_scenario::nml();  // capability 2
  opts.fanout_limit = 5;                 // explicit wins
  const auto result = wave_pipeline(net, opts);
  EXPECT_LE(max_fanout_degree(result.net), 5u);
  // Against the scenario-derived flow the looser limit needs fewer FOGs.
  pipeline_options derived;
  derived.scenario = tech_scenario::nml();
  EXPECT_LT(result.fogs_added, wave_pipeline(net, derived).fogs_added);
}

TEST(pipeline_scenario, reset_disables_restriction_regardless_of_scenario) {
  const auto net = gen::random_mig({10, 120, 0.5, 8, 31});
  pipeline_options opts;
  opts.scenario = tech_scenario::nml();
  opts.fanout_limit.reset();
  const auto result = wave_pipeline(net, opts);
  EXPECT_EQ(result.fogs_added, 0u);
  EXPECT_EQ(result.restriction_buffers_added, 0u);
}

TEST(pipeline_scenario, scenario_capability_drives_the_derived_limit) {
  const auto net = gen::random_mig({12, 160, 0.5, 8, 77});
  for (const auto& name : tech_scenario::names()) {
    pipeline_options opts;
    opts.scenario = tech_scenario::by_name(name);
    const auto result = wave_pipeline(net, opts);
    ASSERT_TRUE(opts.scenario.fanout_limit);
    EXPECT_LE(max_fanout_degree(result.net), *opts.scenario.fanout_limit) << name;
    EXPECT_TRUE(result.wave_ready) << name;
    EXPECT_TRUE(functionally_equivalent(net, result.net)) << name;
  }
}

TEST(pipeline_scenario, lossy_scenario_inserts_repeaters_and_accounts_them) {
  const auto net = gen::random_mig({12, 400, 0.5, 10, 2024});
  pipeline_options opts;
  opts.scenario = tech_scenario::fdm_swd();
  const auto result = wave_pipeline(net, opts);
  // Deep random MIG at fan-out 2: the restricted depth far exceeds the
  // 10-level budget, so repeaters must appear and be accounted for.
  ASSERT_GT(result.max_attenuation_run, 10u);
  EXPECT_GT(result.repeater_buffers_added, 0u);
  EXPECT_EQ(result.final_stats.buffers, result.restriction_buffers_added +
                                            result.repeater_buffers_added +
                                            result.balance_buffers_added);
  EXPECT_TRUE(result.wave_ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_LE(worst_run(result.net), 10u);

  // enforce_loss = false studies the raw flow: no repeaters, run reported 0.
  opts.enforce_loss = false;
  const auto raw = wave_pipeline(net, opts);
  EXPECT_EQ(raw.repeater_buffers_added, 0u);
  EXPECT_EQ(raw.max_attenuation_run, 0u);
}

// ---------------------------------------------------- metrics and timing ---

TEST(scenario_metrics, lanes_one_and_no_repeaters_match_the_base_model) {
  const auto net = wave_pipeline(gen::ripple_adder_circuit(8)).net;
  const auto sm = compute_scenario_metrics(net, tech_scenario::swd(), true);
  const auto base = compute_metrics(net, technology::swd(), true);
  EXPECT_DOUBLE_EQ(sm.metrics.area_um2, base.area_um2);
  EXPECT_DOUBLE_EQ(sm.metrics.energy_per_op_fj, base.energy_per_op_fj);
  EXPECT_DOUBLE_EQ(sm.metrics.throughput_mops, base.throughput_mops);
  EXPECT_EQ(sm.metrics.waves_in_flight, base.waves_in_flight);
  EXPECT_DOUBLE_EQ(sm.repeater_area_delta_um2, 0.0);
}

TEST(scenario_metrics, repeaters_are_recosted_at_the_premium) {
  pipeline_options opts;
  opts.scenario = tech_scenario::fdm_swd();
  const auto piped = wave_pipeline(gen::random_mig({12, 400, 0.5, 10, 2024}), opts);
  ASSERT_GT(piped.repeater_buffers_added, 0u);

  const auto sm = compute_scenario_metrics(piped.net, opts.scenario, true,
                                           piped.repeater_buffers_added);
  const auto base = compute_metrics(piped.net, opts.scenario.tech, true);
  const auto reps = static_cast<double>(piped.repeater_buffers_added);
  // FDM-SWD repeater premium over a plain buffer: area 2-2=0, energy 3-1=2.
  EXPECT_DOUBLE_EQ(sm.repeater_area_delta_um2, 0.0);
  EXPECT_DOUBLE_EQ(sm.repeater_energy_delta_fj,
                   opts.scenario.tech.cell_energy_fj * reps * 2.0);
  EXPECT_DOUBLE_EQ(sm.metrics.energy_per_op_fj,
                   base.energy_per_op_fj + sm.repeater_energy_delta_fj);
}

TEST(scenario_metrics, fdm_lanes_multiply_throughput_and_waves_in_flight) {
  pipeline_options opts;
  opts.scenario = tech_scenario::fdm_swd();
  const auto piped = wave_pipeline(gen::ripple_adder_circuit(8), opts);
  const auto sm = compute_scenario_metrics(piped.net, opts.scenario, true,
                                           piped.repeater_buffers_added);
  const auto base = compute_metrics(piped.net, opts.scenario.tech, true);
  EXPECT_DOUBLE_EQ(sm.metrics.throughput_mops, 4.0 * base.throughput_mops);
  EXPECT_EQ(sm.metrics.waves_in_flight, 4u * base.waves_in_flight);
  // Steady-state power recomputed against the multiplied throughput.
  EXPECT_DOUBLE_EQ(sm.metrics.power_steady_state_uw,
                   sm.metrics.energy_per_op_fj * sm.metrics.throughput_mops * 1e-3);
  // Non-pipelined metrics ignore lanes (one op at a time either way).
  const auto np = compute_scenario_metrics(piped.net, opts.scenario, false);
  EXPECT_DOUBLE_EQ(np.metrics.throughput_mops,
                   compute_metrics(piped.net, opts.scenario.tech, false).throughput_mops);
}

TEST(scenario_timing, overload_scales_effective_throughput_by_lanes) {
  const auto net = wave_pipeline(gen::ripple_adder_circuit(6)).net;
  const auto base = analyze_stage_timing(net, technology::swd());
  const auto swd = analyze_stage_timing(net, tech_scenario::swd());
  EXPECT_DOUBLE_EQ(swd.effective_wp_throughput_mops, base.effective_wp_throughput_mops);
  EXPECT_DOUBLE_EQ(swd.required_phase_delay_ns, base.required_phase_delay_ns);
  const auto fdm = analyze_stage_timing(net, tech_scenario::fdm_swd());
  EXPECT_DOUBLE_EQ(fdm.effective_wp_throughput_mops,
                   4.0 * base.effective_wp_throughput_mops);
  EXPECT_DOUBLE_EQ(fdm.required_phase_delay_ns, base.required_phase_delay_ns);
}

// ------------------------------------------------------ FDM clock metadata ---

TEST(fdm_metadata, lanes_compress_ticks_and_multiply_waves_in_flight) {
  pipeline_options opts;
  opts.scenario = tech_scenario::fdm_swd();
  const auto prepared = wave_pipeline(gen::random_mig({10, 150, 0.5, 8, 808}), opts).net;

  const engine::compiled_netlist plain{prepared};
  const engine::compiled_netlist fdm{prepared,
                                     engine::compile_options{.fdm_lanes = 4}};

  std::mt19937_64 rng{505};
  std::vector<std::vector<bool>> waves(130, std::vector<bool>(prepared.num_pis()));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  const auto batch = engine::wave_batch::from_waves(waves, prepared.num_pis());

  const auto base = engine::run_waves_packed(plain, batch, 3);
  const auto lanes = engine::run_waves_packed(fdm, batch, 3);

  // Outputs are lane-independent; only the clock metadata changes.
  EXPECT_EQ(lanes.words, base.words);
  EXPECT_EQ(lanes.waves_in_flight, 4u * base.waves_in_flight);
  EXPECT_EQ(lanes.latency_ticks, base.latency_ticks);
  EXPECT_LT(lanes.ticks, base.ticks);  // 130 waves in ceil(130/4) = 33 slots

  // The cycle-accurate simulator must still inject and sample every wave —
  // the FDM tag compresses metadata, never the simulated tick span.
  const auto scalar = engine::run_waves(fdm, waves, 3);
  EXPECT_EQ(base.unpack(), scalar.outputs);
  EXPECT_EQ(scalar.waves_in_flight, lanes.waves_in_flight);
}

// -------------------------------------------------- scenario program cache ---

TEST(scenario_cache, same_netlist_different_scenarios_are_distinct_programs) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor};
  const auto net = gen::ripple_adder_circuit(6);

  const auto untagged = session.compile(net, 3);
  const auto swd = session.compile(net, 3, tech_scenario::swd());
  const auto qca = session.compile(net, 3, tech_scenario::qca());
  const auto fdm = session.compile(net, 3, tech_scenario::fdm_swd());

  EXPECT_NE(untagged.get(), swd.get());
  EXPECT_NE(swd.get(), qca.get());
  EXPECT_NE(qca.get(), fdm.get());
  EXPECT_EQ(session.stats().entries, 4u);
  EXPECT_EQ(session.stats().misses, 4u);

  // Resubmission under the same scenario is a cache hit on the same program.
  EXPECT_EQ(session.compile(net, 3, tech_scenario::qca()).get(), qca.get());
  EXPECT_EQ(session.stats().hits, 1u);
  EXPECT_EQ(session.stats().entries, 4u);

  // The tag and lanes are baked into the program.
  EXPECT_EQ(untagged->options().scenario_fingerprint, 0u);
  EXPECT_EQ(swd->options().scenario_fingerprint, tech_scenario::swd().fingerprint());
  EXPECT_EQ(fdm->options().fdm_lanes, 4u);
  EXPECT_EQ(swd->options().fdm_lanes, 1u);
}

TEST(scenario_cache, scenario_runs_are_bit_identical_to_their_prepared_reference) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor};
  const auto net = gen::random_mig({11, 130, 0.5, 8, 606});
  std::mt19937_64 rng{909};
  std::vector<std::vector<bool>> waves(100, std::vector<bool>(net.num_pis()));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());

  for (const auto& name : tech_scenario::names()) {
    const auto scenario = tech_scenario::by_name(name);
    pipeline_options opts;
    opts.scenario = scenario;
    const engine::compiled_netlist reference{wave_pipeline(net, opts).net};
    const auto expected = engine::run_waves_packed(reference, batch, 3);
    const auto got = session.run(net, batch, 3, scenario);
    EXPECT_EQ(got.words, expected.words) << name;
  }
}

}  // namespace
}  // namespace wavemig
