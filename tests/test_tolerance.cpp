// Tolerance-aware balancing: under a P-phase regeneration clock a
// non-volatile cell holds its value for P ticks, so an edge may span up to
// `tolerance + 1` scheduled levels with tolerance <= P - 2 and still deliver
// the same wave (DESIGN.md §2.2). These tests validate the theory
// empirically with the cycle-accurate simulator and check the buffer
// savings.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> alternating_waves(std::size_t count, std::size_t pis) {
  // Alternating all-zero / all-one waves maximize interference.
  std::vector<std::vector<bool>> waves;
  for (std::size_t w = 0; w < count; ++w) {
    waves.emplace_back(pis, w % 2 == 1);
  }
  return waves;
}

std::vector<std::vector<bool>> reference_outputs(const mig_network& net,
                                                 const std::vector<std::vector<bool>>& waves) {
  std::vector<std::vector<bool>> ref;
  for (const auto& wave : waves) {
    ref.push_back(simulate_pattern(net, wave));
  }
  return ref;
}

TEST(tolerance, zero_tolerance_matches_legacy_behaviour) {
  const auto net = gen::multiplier_circuit(4);
  buffer_insertion_options exact;
  exact.tolerance = 0;
  const auto result = insert_buffers(net, exact);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
  EXPECT_TRUE(check_wave_readiness(result.net, result.schedule, 0).ready);
  // With tolerance 0 the returned schedule IS the ASAP level map.
  const auto asap = compute_levels(result.net);
  EXPECT_EQ(result.schedule.level, asap.level);
  EXPECT_EQ(result.schedule.depth, asap.depth);
}

class tolerance_sweep_test
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(tolerance_sweep_test, saves_buffers_and_stays_coherent) {
  const auto& [name, tolerance] = GetParam();
  const auto net = gen::build_benchmark(name);

  buffer_insertion_options exact;
  buffer_insertion_options tolerant;
  tolerant.tolerance = tolerance;
  const auto base = insert_buffers(net, exact);
  const auto relaxed = insert_buffers(net, tolerant);

  // Fewer (or equal) buffers, same function, readiness under the schedule.
  EXPECT_LE(relaxed.buffers_added, base.buffers_added);
  EXPECT_TRUE(functionally_equivalent(net, relaxed.net, 4));
  const auto readiness = check_wave_readiness(relaxed.net, relaxed.schedule, tolerance);
  EXPECT_TRUE(readiness.ready) << (readiness.issues.empty() ? "" : readiness.issues.front());

  // Coherence under a clock with phases = tolerance + 2 (the safe bound),
  // clocked by the returned schedule.
  const unsigned phases = tolerance + 2;
  const auto waves = alternating_waves(8, relaxed.net.num_pis());
  const auto run = run_waves(relaxed.net, waves, phases, relaxed.schedule);
  EXPECT_EQ(run.outputs, reference_outputs(relaxed.net, waves));
}

INSTANTIATE_TEST_SUITE_P(
    suite_sweep, tolerance_sweep_test,
    ::testing::Combine(::testing::Values("mul8", "sasc", "crc32_8", "int2float16"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_tol" + std::to_string(std::get<1>(info.param));
    });

TEST(tolerance, three_phase_clock_tolerates_gap_one) {
  // tolerance 1 = P - 2 for the paper's three-phase clock: the standard
  // clocking scheme already absorbs single-level jumps.
  const auto net = gen::multiplier_circuit(5);
  buffer_insertion_options tolerant;
  tolerant.tolerance = 1;
  const auto relaxed = insert_buffers(net, tolerant);

  const auto waves = alternating_waves(10, relaxed.net.num_pis());
  const auto run = run_waves(relaxed.net, waves, 3, relaxed.schedule);
  EXPECT_EQ(run.outputs, reference_outputs(relaxed.net, waves));
}

TEST(tolerance, exceeding_the_hold_window_corrupts) {
  // An edge spanning >= P scheduled levels reads the next wave: build a
  // skewed netlist with a 4-level jump and run it at P = 3.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  signal deep = net.create_maj(a, b, c);
  for (int i = 0; i < 4; ++i) {
    deep = net.create_maj(deep, b, !c);
  }
  net.create_po(net.create_maj(deep, a, b));

  const auto waves = alternating_waves(8, 3);
  const auto run = run_waves(net, waves, 3);
  EXPECT_NE(run.outputs, reference_outputs(net, waves));
}

TEST(tolerance, monotone_buffer_savings) {
  const auto net = gen::build_benchmark("mul16");
  std::size_t previous = SIZE_MAX;
  for (unsigned tol : {0u, 1u, 2u, 3u}) {
    buffer_insertion_options opts;
    opts.tolerance = tol;
    const auto result = insert_buffers(net, opts);
    EXPECT_LE(result.buffers_added, previous) << "tolerance " << tol;
    previous = result.buffers_added;
  }
}

TEST(tolerance, combined_with_alap_schedule) {
  const auto net = gen::build_benchmark("mul8");
  buffer_insertion_options opts;
  opts.schedule = schedule_policy::alap;
  opts.tolerance = 1;
  const auto result = insert_buffers(net, opts);
  EXPECT_TRUE(check_wave_readiness(result.net, result.schedule, 1).ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));

  const auto waves = alternating_waves(8, result.net.num_pis());
  const auto run = run_waves(result.net, waves, 3, result.schedule);
  EXPECT_EQ(run.outputs, reference_outputs(result.net, waves));
}

TEST(tolerance, schedule_rejects_size_mismatch) {
  const auto net = gen::multiplier_circuit(3);
  level_map bogus;
  bogus.level.assign(3, 0);
  EXPECT_THROW(run_waves(net, alternating_waves(2, net.num_pis()), 3, bogus),
               std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
