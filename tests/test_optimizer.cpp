// Unit and property tests of the compiled-program optimizer
// (engine/optimizer.hpp): targeted constructions for each pass — constant
// /functional folding of majority gates, structural hashing (CSE) under
// self-duality, dead-cone removal, liveness-based slot recycling — plus the
// acceptance property that randomized MIGs evaluate bit-identically at
// every opt level through every execution path (scalar, packed, parallel,
// async serving).
//
// The network builder already hashes and folds plain majority gates, so
// the constructions route operands through buffers (never hashed): after
// lowering folds the buffers away by reference forwarding, the redundancy
// becomes visible to the optimizer exactly as it does on balanced netlists.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {
namespace {

using engine::compile_options;
using engine::compiled_netlist;

/// Random PI words for cross-checking two compiled programs combinationally.
std::vector<std::uint64_t> random_words(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) {
    w = rng();
  }
  return words;
}

void expect_same_function(const compiled_netlist& a, const compiled_netlist& b,
                          std::size_t num_pis, std::uint64_t seed) {
  for (int round = 0; round < 4; ++round) {
    const auto words = random_words(num_pis, seed + round);
    EXPECT_EQ(a.eval_words(words), b.eval_words(words)) << "round " << round;
  }
}

TEST(optimizer, folds_duplicate_operand_majorities) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // maj(a, a, b) hidden behind two distinct buffers.
  const signal m = net.create_maj(net.create_buffer(a), net.create_buffer(a), b);
  net.create_po(m);

  const auto raw = compiled_netlist::comb_only(net);
  const auto opt = compiled_netlist::comb_only(net, {.opt_level = 1});
  EXPECT_EQ(raw.num_comb_ops(), 1u);
  EXPECT_EQ(opt.num_comb_ops(), 0u);
  EXPECT_GE(opt.opt_stats().constants_folded, 1u);
  expect_same_function(raw, opt, net.num_pis(), 101);
}

TEST(optimizer, folds_complement_pair_and_constant_majorities) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // maj(a, !a, b) = b — complement pair via buffers.
  net.create_po(net.create_maj(net.create_buffer(a), !net.create_buffer(a), b));
  // maj(0, 1, a) = a — both constants via buffers.
  net.create_po(net.create_maj(net.create_buffer(net.get_constant(false)),
                               net.create_buffer(net.get_constant(true)), a));
  // maj(1, 1, b) = 1 — a constant-valued output.
  net.create_po(net.create_maj(net.create_buffer(net.get_constant(true)),
                               net.create_buffer(net.get_constant(true)), b));

  const auto raw = compiled_netlist::comb_only(net);
  const auto opt = compiled_netlist::comb_only(net, {.opt_level = 1});
  EXPECT_EQ(raw.num_comb_ops(), 3u);
  EXPECT_EQ(opt.num_comb_ops(), 0u);
  EXPECT_EQ(opt.opt_stats().constants_folded, 3u);
  expect_same_function(raw, opt, net.num_pis(), 202);
}

TEST(optimizer, cse_merges_structurally_identical_gates) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  // Two copies of maj(a, b, c), distinct at build time thanks to buffers.
  const signal g1 = net.create_maj(net.create_buffer(a), b, c);
  const signal g2 = net.create_maj(net.create_buffer(a), b, c);
  net.create_po(g1);
  net.create_po(g2);

  const auto raw = compiled_netlist::comb_only(net);
  const auto opt = compiled_netlist::comb_only(net, {.opt_level = 1});
  EXPECT_EQ(raw.num_comb_ops(), 2u);
  EXPECT_EQ(opt.num_comb_ops(), 1u);
  EXPECT_EQ(opt.opt_stats().cse_hits, 1u);
  expect_same_function(raw, opt, net.num_pis(), 303);
}

TEST(optimizer, cse_canonicalizes_under_self_duality) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(net.create_buffer(a), b, c);
  // maj(!a, !b, !c) = !maj(a, b, c): same gate modulo output polarity.
  const signal g2 = net.create_maj(!net.create_buffer(a), !b, !c);
  net.create_po(g1);
  net.create_po(g2);

  const auto raw = compiled_netlist::comb_only(net);
  const auto opt = compiled_netlist::comb_only(net, {.opt_level = 1});
  EXPECT_EQ(opt.num_comb_ops(), 1u);
  EXPECT_EQ(opt.opt_stats().cse_hits, raw.num_comb_ops() - 1);
  expect_same_function(raw, opt, net.num_pis(), 404);
}

TEST(optimizer, removes_cones_dead_from_the_outputs) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal live = net.create_maj(a, b, c);
  // A two-gate cone no PO reaches (buffers keep it distinct from `live`).
  const signal d1 = net.create_maj(net.create_buffer(a), b, !c);
  (void)net.create_maj(d1, net.create_buffer(b), c);
  net.create_po(live);

  const auto raw = compiled_netlist::comb_only(net);
  const auto opt = compiled_netlist::comb_only(net, {.opt_level = 1});
  EXPECT_EQ(raw.num_comb_ops(), 3u);
  EXPECT_EQ(opt.num_comb_ops(), 1u);
  EXPECT_EQ(opt.opt_stats().dead_ops_removed, 2u);
  expect_same_function(raw, opt, net.num_pis(), 505);
}

TEST(optimizer, slot_recycling_shrinks_scratch_to_peak_liveness) {
  // A 50-gate chain: each gate's single gate-operand dies at its consumer,
  // so peak liveness is exactly one gate slot regardless of chain length.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  signal t = net.create_maj(a, b, c);
  constexpr std::size_t chain = 50;
  for (std::size_t i = 1; i < chain; ++i) {
    t = net.create_maj(t, b, i % 2 == 0 ? c : !c);
  }
  net.create_po(t);

  const std::size_t fixed = 1 + net.num_pis();
  const auto raw = compiled_netlist::comb_only(net);
  const auto opt1 = compiled_netlist::comb_only(net, {.opt_level = 1});
  const auto opt2 = compiled_netlist::comb_only(net, {.opt_level = 2});

  EXPECT_EQ(raw.comb_slot_count(), fixed + chain);
  EXPECT_EQ(opt1.comb_slot_count(), fixed + chain);  // no recycling below level 2
  EXPECT_EQ(opt2.comb_slot_count(), fixed + 1);
  EXPECT_EQ(opt2.opt_stats().peak_live_slots, 1u);
  EXPECT_EQ(opt2.opt_stats().slots_before, fixed + chain);
  EXPECT_EQ(opt2.opt_stats().slots_after, fixed + 1);
  EXPECT_EQ(opt2.num_comb_ops(), chain);  // recycling removes slots, not ops
  expect_same_function(raw, opt2, net.num_pis(), 606);
}

TEST(optimizer, peak_liveness_accounts_for_fan_out_lifetimes) {
  // Balanced binary reduction over 8 leaves: the widest live front is the
  // leaf layer, and recycling cannot beat it. slots_after - fixed must
  // equal peak_live_slots exactly (the accounting identity).
  mig_network net;
  std::vector<signal> layer;
  const signal x = net.create_pi();
  const signal y = net.create_pi();
  for (int i = 0; i < 8; ++i) {
    layer.push_back(net.create_maj(net.create_buffer(x), net.create_buffer(y),
                                   i % 2 == 0 ? x : !y));
  }
  while (layer.size() > 1) {
    std::vector<signal> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(net.create_maj(layer[i], layer[i + 1], x));
    }
    layer = std::move(next);
  }
  net.create_po(layer[0]);

  const std::size_t fixed = 1 + net.num_pis();
  const auto opt2 = compiled_netlist::comb_only(net, {.opt_level = 2});
  EXPECT_EQ(opt2.comb_slot_count() - fixed, opt2.opt_stats().peak_live_slots);
  EXPECT_LE(opt2.comb_slot_count(), compiled_netlist::comb_only(net).comb_slot_count());
  expect_same_function(compiled_netlist::comb_only(net), opt2, net.num_pis(), 707);
}

TEST(optimizer, opt_levels_are_bit_identical_across_all_execution_paths) {
  engine::parallel_executor executor{2};
  const unsigned phases = 3;

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    gen::random_mig_profile profile;
    profile.inputs = 8 + 2 * static_cast<unsigned>(seed);
    profile.gates = 100 + 30 * static_cast<unsigned>(seed);
    profile.outputs = 6 + static_cast<unsigned>(seed);
    profile.locality = 0.3 + 0.1 * static_cast<double>(seed);
    profile.seed = seed * 1337;
    const auto net = gen::random_mig(profile);
    const auto balanced = insert_buffers(net);

    std::mt19937_64 rng{seed ^ 0xBEEF};
    std::vector<std::vector<bool>> waves(700, std::vector<bool>(net.num_pis()));
    for (auto& wave : waves) {  // > 1 multi-chunk block
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (rng() & 1u) != 0;
      }
    }
    const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());

    const compiled_netlist baseline{balanced.net, balanced.schedule};
    const auto reference = engine::run_waves_packed(baseline, batch, phases);

    for (const unsigned level : {0u, 1u, 2u}) {
      const compile_options copts{.opt_level = level};
      const compiled_netlist compiled{balanced.net, balanced.schedule, copts};
      EXPECT_LE(compiled.num_comb_ops(), baseline.num_comb_ops()) << "level " << level;

      const auto packed = engine::run_waves_packed(compiled, batch, phases);
      EXPECT_EQ(packed.words, reference.words) << "packed, level " << level;

      const auto parallel = engine::run_waves_parallel(compiled, batch, phases, executor);
      EXPECT_EQ(parallel.words, reference.words) << "parallel, level " << level;

      engine::serving_session serving{executor, {}, {}, 0, copts};
      const auto async = serving.submit(net, batch, phases).get();
      EXPECT_EQ(async.words, reference.words) << "async, level " << level;

      // Scalar cycle-accurate path: the tick program is never optimized,
      // but must still agree through the same compiled object.
      const auto scalar = engine::run_waves(compiled, waves, phases);
      EXPECT_EQ(scalar.outputs, packed.unpack()) << "scalar vs packed, level " << level;
    }
  }
}

// ------------------------------------------------------- op scheduling ---

/// Asserts the program is topologically valid: every gate operand is either
/// fixed (constant / PI) or written by an earlier op. (Slot recycling at
/// opt level >= 2 reuses targets, so slots may be written more than once;
/// `expect_same_function` covers value correctness under reuse.)
void expect_topologically_valid(const compiled_netlist& program, std::size_t num_pis) {
  const std::size_t fixed = 1 + num_pis;
  std::vector<std::uint8_t> produced(program.comb_slot_count(), 0);
  std::size_t position = 0;
  for (const auto& op : program.comb_ops()) {
    for (const engine::slot_ref ref : {op.a, op.b, op.c}) {
      const std::size_t slot = ref >> 1;
      EXPECT_TRUE(slot < fixed || produced[slot])
          << "op " << position << " reads slot " << slot << " before its producer";
    }
    produced[op.target] = 1;
    ++position;
  }
}

TEST(scheduler, preserves_topological_validity_and_outputs_on_random_migs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen::random_mig_profile profile;
    profile.inputs = 10 + 2 * static_cast<unsigned>(seed);
    profile.gates = 120 + 50 * static_cast<unsigned>(seed);
    profile.outputs = 5 + static_cast<unsigned>(seed);
    profile.locality = 0.25 + 0.1 * static_cast<double>(seed);
    profile.seed = seed * 7919;
    const auto net = gen::random_mig(profile);

    const auto baseline = compiled_netlist::comb_only(net);
    for (const unsigned opt : {0u, 1u, 2u}) {
      for (const unsigned sched : {1u, 2u}) {
        const auto scheduled = compiled_netlist::comb_only(
            net, {.opt_level = opt, .schedule_level = sched});
        expect_topologically_valid(scheduled, net.num_pis());
        expect_same_function(baseline, scheduled, net.num_pis(), seed * 31 + opt * 7 + sched);
        // Reordering never changes what survives — only where it sits.
        const auto unscheduled = compiled_netlist::comb_only(net, {.opt_level = opt});
        EXPECT_EQ(scheduled.num_comb_ops(), unscheduled.num_comb_ops())
            << "opt " << opt << " sched " << sched;
      }
    }
  }
}

TEST(scheduler, deinterleaves_independent_chains_to_constant_liveness) {
  // 16 independent chains created round-robin, so the lowering order keeps
  // all 16 heads live at once; an accumulator then folds the chain results
  // together, letting each finished head die. The liveness-greedy scheduler
  // runs one chain down before starting the next and folds heads into the
  // accumulator as soon as they are ready: peak liveness collapses from the
  // chain count to O(1), and slot recycling banks the drop as comb_slots.
  constexpr std::size_t chains = 16;
  constexpr std::size_t length = 12;
  mig_network net;
  const signal b = net.create_pi();
  std::vector<signal> seeds;
  for (std::size_t k = 0; k < chains; ++k) {
    seeds.push_back(net.create_pi());
    // Pin every seed with a PO so chain-start gates kill nothing: the
    // greedy tie then strictly prefers continuing a chain (1 kill) or
    // folding a head into the accumulator (2 kills) over opening one.
    net.create_po(seeds[k]);
  }
  std::vector<signal> heads = seeds;
  for (std::size_t step = 0; step < length; ++step) {
    for (std::size_t k = 0; k < chains; ++k) {
      heads[k] = net.create_maj(heads[k], step % 2 == 0 ? b : !b,
                                seeds[(k + step + 1) % chains]);
    }
  }
  signal acc = heads[0];
  for (std::size_t k = 1; k < chains; ++k) {
    acc = net.create_maj(acc, heads[k], b);
  }
  net.create_po(acc);

  const auto plain = compiled_netlist::comb_only(net, {.opt_level = 2});
  EXPECT_GE(plain.opt_stats().peak_live_slots, chains);
  EXPECT_EQ(plain.opt_stats().scheduled_op_moves, 0u);
  for (const unsigned level : {1u, 2u}) {
    const auto sched =
        compiled_netlist::comb_only(net, {.opt_level = 2, .schedule_level = level});
    EXPECT_LT(sched.opt_stats().peak_live_slots, plain.opt_stats().peak_live_slots);
    EXPECT_LE(sched.opt_stats().peak_live_slots, 6u) << "level " << level;
    EXPECT_LT(sched.comb_slot_count(), plain.comb_slot_count());
    EXPECT_GT(sched.opt_stats().scheduled_op_moves, 0u);
    expect_topologically_valid(sched, net.num_pis());
    expect_same_function(plain, sched, net.num_pis(), 808 + level);
  }
}

TEST(scheduler, reduces_peak_liveness_on_the_mig4k_reference) {
  // The bench-gated acceptance shape: the mig4k reference netlist must
  // compile to fewer live slots with scheduling on.
  const auto net = gen::random_mig({64, 4000, 0.5, 32, 777});
  const auto balanced = insert_buffers(net);
  const compiled_netlist plain{balanced.net, balanced.schedule, {.opt_level = 2}};
  const compiled_netlist sched{balanced.net, balanced.schedule,
                               {.opt_level = 2, .schedule_level = 1}};
  EXPECT_LT(sched.opt_stats().peak_live_slots, plain.opt_stats().peak_live_slots);
  EXPECT_LT(sched.comb_slot_count(), plain.comb_slot_count());
  // The accounting identity holds with scheduling on.
  EXPECT_EQ(sched.comb_slot_count() - (1 + balanced.net.num_pis()),
            sched.opt_stats().peak_live_slots);
  expect_topologically_valid(sched, balanced.net.num_pis());
}

TEST(scheduler, options_fingerprint_separates_every_knob) {
  const compile_options base{};
  const auto fp = [](const compile_options& o) { return engine::options_fingerprint(o); };
  EXPECT_NE(fp(base), fp({.opt_level = 2}));
  EXPECT_NE(fp(base), fp({.schedule_level = 1}));
  EXPECT_NE(fp({.schedule_level = 1}), fp({.schedule_level = 2}));
  EXPECT_NE(fp(base), fp({.scenario_fingerprint = 7}));
  EXPECT_NE(fp(base), fp({.fdm_lanes = 4}));
  EXPECT_NE(fp(base), fp({.op_prefetch = true}));
  // Same options, same fingerprint — it keys a cache.
  EXPECT_EQ(fp({.opt_level = 2, .schedule_level = 1}),
            fp({.opt_level = 2, .schedule_level = 1}));
}

TEST(optimizer, session_stats_report_resident_op_and_slot_counts) {
  engine::parallel_executor executor{2};
  const auto net = gen::random_mig({10, 120, 0.5, 8, 42});
  engine::wave_batch batch{net.num_pis()};
  batch.append(std::vector<bool>(net.num_pis(), true));

  engine::batch_session raw_session{executor};
  engine::batch_session opt_session{executor, {}, {}, {.opt_level = 2}};
  const auto raw_run = raw_session.run(net, batch, 3);
  const auto opt_run = opt_session.run(net, batch, 3);
  EXPECT_EQ(raw_run.words, opt_run.words);

  const auto raw_stats = raw_session.stats();
  const auto opt_stats = opt_session.stats();
  ASSERT_EQ(raw_stats.entries, 1u);
  ASSERT_EQ(opt_stats.entries, 1u);
  EXPECT_GT(raw_stats.comb_ops, 0u);
  EXPECT_GT(raw_stats.comb_slots, 0u);
  EXPECT_LE(opt_stats.comb_ops, raw_stats.comb_ops);
  EXPECT_LT(opt_stats.comb_slots, raw_stats.comb_slots);

  // The compiled program exposes its own options and stats.
  const auto program = opt_session.compile(net, 3);
  EXPECT_EQ(program->options().opt_level, 2u);
  EXPECT_EQ(program->opt_stats().slots_after, program->comb_slot_count());
}

TEST(scheduler, schedule_levels_occupy_distinct_cache_entries) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor};
  const auto net = gen::random_mig({12, 200, 0.5, 8, 99});
  const std::uint64_t fp = engine::network_fingerprint(net);

  const auto plain = session.compile(net, 3, fp, compile_options{.opt_level = 2});
  const auto sched =
      session.compile(net, 3, fp, compile_options{.opt_level = 2, .schedule_level = 1});
  // Distinct entries, distinct programs — a schedule level can never be
  // served a program compiled at another.
  EXPECT_EQ(session.stats().entries, 2u);
  EXPECT_NE(plain.get(), sched.get());
  EXPECT_EQ(plain->options().schedule_level, 0u);
  EXPECT_EQ(sched->options().schedule_level, 1u);

  // Re-requesting either level hits its own entry, never the other's.
  EXPECT_EQ(session.compile(net, 3, fp, compile_options{.opt_level = 2}).get(), plain.get());
  EXPECT_EQ(
      session.compile(net, 3, fp, compile_options{.opt_level = 2, .schedule_level = 1}).get(),
      sched.get());
  EXPECT_EQ(session.stats().entries, 2u);

  // Same function either way; the session surfaces the scheduler's work.
  expect_same_function(*plain, *sched, net.num_pis(), 909);
  const auto stats = session.stats();
  EXPECT_GT(stats.comb_peak_live, 0u);
  EXPECT_GT(stats.sched_op_moves, 0u);
}

TEST(scheduler, serving_requests_pin_their_compile_options) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor};
  const auto net = std::make_shared<mig_network>(gen::random_mig({12, 200, 0.5, 8, 99}));

  engine::wave_batch batch{net->num_pis()};
  std::mt19937_64 rng{777};
  for (int w = 0; w < 70; ++w) {
    std::vector<bool> wave(net->num_pis());
    for (auto&& bit : wave) {
      bit = (rng() & 1u) != 0;
    }
    batch.append(wave);
  }

  engine::submit_options plain_opts;
  plain_opts.compile = compile_options{.opt_level = 2};
  engine::submit_options sched_opts;
  sched_opts.compile = compile_options{.opt_level = 2, .schedule_level = 1};

  auto plain_future = serving.submit(net, batch, 3, plain_opts);
  auto sched_future = serving.submit(net, batch, 3, sched_opts);
  const auto plain_result = plain_future.get();
  const auto sched_result = sched_future.get();
  EXPECT_EQ(plain_result.words, sched_result.words);
  // Two resident programs: the per-request overrides never cross-served.
  EXPECT_EQ(serving.stats().entries, 2u);
  EXPECT_GT(serving.stats().sched_op_moves, 0u);
}

}  // namespace
}  // namespace wavemig
