#include "wavemig/buffer_insertion.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

namespace wavemig {
namespace {

/// Two-level example: g1 = M(a,b,c) at level 1, g2 = M(g1,d,e)... with a
/// direct edge a -> g2 spanning two levels, requiring one buffer.
mig_network skewed_example() {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, a, !b);
  net.create_po(g2, "f");
  return net;
}

TEST(buffer_insertion, balances_skewed_edges) {
  const auto net = skewed_example();
  const auto result = insert_buffers(net);
  // a and b each need one buffer into g2; the PO is already at max depth.
  EXPECT_EQ(result.buffers_added, 2u);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_EQ(result.depth_before, 2u);
  EXPECT_EQ(result.depth_after, 2u);
}

TEST(buffer_insertion, pads_outputs_to_equal_depth) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, a, b);  // depth 2
  net.create_po(g1, "shallow");                // depth 1: needs 1 pad buffer
  net.create_po(g2, "deep");
  net.create_po(a, "direct");                  // PI -> PO: needs 2 pad buffers

  const auto result = insert_buffers(net);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  const auto levels = compute_levels(result.net);
  for (const auto& po : result.net.pos()) {
    EXPECT_EQ(levels[po.driver.index()], 2u) << po.name;
  }
}

TEST(buffer_insertion, chain_shares_buffers_between_fanouts) {
  // Driver u feeding consumers at levels 2, 3, 4: a shared chain costs 3
  // buffers (taps at 1, 2, 3); naive would cost 1 + 2 + 3 = 6.
  mig_network net;
  const signal u = net.create_pi("u");
  const signal x = net.create_pi("x");
  const signal y = net.create_pi("y");
  const signal g1 = net.create_maj(u, x, y);          // level 1
  const signal g2 = net.create_maj(g1, x, !y);        // level 2
  const signal g3 = net.create_maj(g2, y, !x);        // level 3
  const signal c2 = net.create_maj(u, g1, x);         // u used at level 2
  const signal c3 = net.create_maj(u, g2, y);         // u used at level 3
  const signal c4 = net.create_maj(u, g3, x);         // u used at level 4
  net.create_po(c2);
  net.create_po(c3);
  net.create_po(c4);

  buffer_insertion_options chain_opts;
  chain_opts.strategy = buffer_strategy::chain;
  chain_opts.pad_outputs = false;
  const auto chained = insert_buffers(net, chain_opts);

  buffer_insertion_options naive_opts;
  naive_opts.strategy = buffer_strategy::naive;
  naive_opts.pad_outputs = false;
  const auto naive = insert_buffers(net, naive_opts);

  EXPECT_LT(chained.buffers_added, naive.buffers_added);
  EXPECT_TRUE(functionally_equivalent(net, chained.net));
  EXPECT_TRUE(functionally_equivalent(net, naive.net));
  // u's chain: 3 shared buffers instead of 1+2+3 = 6 private ones.
  // (Other edges may add more buffers; compare just the relationship.)
}

TEST(buffer_insertion, tree_with_unlimited_capacity_matches_chain) {
  const auto net = gen::multiplier_circuit(8);
  buffer_insertion_options chain_opts;
  chain_opts.strategy = buffer_strategy::chain;
  buffer_insertion_options tree_opts;
  tree_opts.strategy = buffer_strategy::tree;
  const auto chained = insert_buffers(net, chain_opts);
  const auto tree = insert_buffers(net, tree_opts);
  EXPECT_EQ(chained.buffers_added, tree.buffers_added);
  EXPECT_TRUE(check_wave_readiness(tree.net).ready);
}

TEST(buffer_insertion, already_balanced_network_needs_nothing) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c));
  const auto result = insert_buffers(net);
  EXPECT_EQ(result.buffers_added, 0u);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
}

TEST(buffer_insertion, idempotent) {
  const auto net = gen::ripple_adder_circuit(12);
  const auto once = insert_buffers(net);
  const auto twice = insert_buffers(once.net);
  EXPECT_EQ(twice.buffers_added, 0u);
  EXPECT_EQ(twice.net.num_components(), once.net.num_components());
}

TEST(buffer_insertion, constant_driven_outputs_are_exempt) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(net.create_maj(a, b, c), a, b), "logic");
  net.create_po(constant1, "one");
  const auto result = insert_buffers(net);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
  EXPECT_EQ(result.net.po_signal(1), constant1);
}

TEST(buffer_insertion, no_padding_mode_keeps_outputs_unaligned) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  net.create_po(g1, "shallow");
  net.create_po(net.create_maj(g1, a, b), "deep");
  buffer_insertion_options opts;
  opts.pad_outputs = false;
  const auto result = insert_buffers(net, opts);
  const auto readiness = check_wave_readiness(result.net);
  EXPECT_EQ(readiness.violating_edges, 0u);
  EXPECT_FALSE(readiness.outputs_aligned);
}

TEST(buffer_insertion, validates_options) {
  const auto net = skewed_example();
  buffer_insertion_options opts;
  opts.fanout_limit = 1;
  EXPECT_THROW(insert_buffers(net, opts), std::invalid_argument);
}

TEST(buffer_insertion, tree_rejects_overloaded_driver) {
  // A PI with 5 direct same-level consumers cannot respect capacity 2.
  mig_network net;
  const signal u = net.create_pi();
  const signal x = net.create_pi();
  const signal y = net.create_pi();
  for (int i = 0; i < 5; ++i) {
    net.create_po(net.create_maj(u, x, i % 2 ? y : !y), "o" + std::to_string(i));
  }
  buffer_insertion_options opts;
  opts.strategy = buffer_strategy::tree;
  opts.fanout_limit = 2;
  EXPECT_THROW(insert_buffers(net, opts), std::invalid_argument);
}

TEST(buffer_insertion, buffer_count_formula_on_multiplier) {
  // Independent of strategy, after insertion every edge spans one level.
  const auto net = gen::multiplier_circuit(6);
  const auto result = insert_buffers(net);
  const auto readiness = check_wave_readiness(result.net);
  EXPECT_TRUE(readiness.ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_GT(result.buffers_added, net.num_majorities());  // multipliers are skewed
}

}  // namespace
}  // namespace wavemig
