#include "wavemig/fanout_restriction.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

/// Degree of every non-FOG component must be 1 and of every FOG at most
/// `limit` under the paper's native-single-output model.
void expect_restricted(const mig_network& net, unsigned limit) {
  const auto fo = compute_fanouts(net);
  net.foreach_node([&](node_index n) {
    if (net.is_constant(n)) {
      return;
    }
    if (net.is_fanout_gate(n)) {
      EXPECT_LE(fo.degree(n), limit) << "FOG " << n;
    } else {
      EXPECT_LE(fo.degree(n), 1u) << "node " << n;
    }
  });
}

/// Star: one shared driver `u`, `m` consumers at the same level; all other
/// PIs are private to one consumer, so only u needs a FOG tree.
mig_network star_example(unsigned m) {
  mig_network net;
  const signal u = net.create_pi("u");
  for (unsigned i = 0; i < m; ++i) {
    const signal p = net.create_pi();
    const signal q = net.create_pi();
    net.create_po(net.create_maj(u, p, q), "o" + std::to_string(i));
  }
  return net;
}

TEST(fanout_restriction, fig6_example_six_consumers_limit3) {
  // The paper's Fig. 6: m = 6 consumers, limit 3 -> exactly
  // ceil((6-1)/(3-1)) = 3 fan-out gates.
  const auto net = star_example(6);
  const auto result = restrict_fanout(net, {3, true});
  EXPECT_EQ(result.fogs_added, 3u);
  expect_restricted(result.net, 3);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(fanout_restriction, minimum_fog_count_formula) {
  for (unsigned m : {2u, 3u, 4u, 5u, 7u, 10u, 16u}) {
    for (unsigned k : {2u, 3u, 4u, 5u}) {
      const auto net = star_example(m);
      const auto result = restrict_fanout(net, {k, true});
      const std::size_t per_driver = (m - 1 + k - 2) / (k - 1);
      EXPECT_EQ(result.fogs_added, per_driver) << "m=" << m << " k=" << k;
      expect_restricted(result.net, k);
    }
  }
}

TEST(fanout_restriction, single_consumers_untouched) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  net.create_po(m1);
  const auto result = restrict_fanout(net, {2, true});
  EXPECT_EQ(result.fogs_added, 0u);
  EXPECT_EQ(result.buffers_added, 0u);
  EXPECT_EQ(result.depth_after, result.depth_before);
}

TEST(fanout_restriction, constants_never_restricted) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // Many AND/OR gates all consuming constants.
  signal acc = net.create_and(a, b);
  for (int i = 0; i < 10; ++i) {
    acc = i % 2 ? net.create_and(acc, a) : net.create_or(acc, b);
  }
  net.create_po(acc);
  const auto result = restrict_fanout(net, {2, true});
  const auto fo = compute_fanouts(result.net);
  EXPECT_TRUE(fo.edges[0].empty());
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(fanout_restriction, deep_consumers_absorb_tree_depth) {
  // u feeds one consumer at level 1 and one at level 4; with limit 2 a
  // single FOG suffices and the deep consumer should absorb tree depth,
  // leaving the critical path unchanged.
  mig_network net;
  const signal u = net.create_pi("u");
  auto fresh_pair = [&](signal anchor) {
    return net.create_maj(anchor, net.create_pi(), net.create_pi());
  };
  const signal fast = fresh_pair(u);     // level 1, only consumer is t2
  const signal t2 = fresh_pair(fast);    // level 2
  const signal t3 = fresh_pair(t2);      // level 3
  const signal slow = net.create_maj(u, t3, net.create_pi());  // level 4, slack 3 on u
  net.create_po(slow, "slow");

  const auto before = compute_levels(net).depth;
  const auto result = restrict_fanout(net, {2, true});
  EXPECT_EQ(result.fogs_added, 1u);
  EXPECT_EQ(result.depth_after, before + 1)
      << "fast consumer is delayed by the FOG, slow consumer absorbs it";
  expect_restricted(result.net, 2);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(fanout_restriction, residual_stretching_adds_buffers) {
  const auto net = gen::multiplier_circuit(4);
  const auto with = restrict_fanout(net, {3, true});
  const auto without = restrict_fanout(net, {3, false});
  EXPECT_GT(with.buffers_added, 0u);
  EXPECT_EQ(without.buffers_added, 0u);
  // FOG count is independent of stretching (paper Fig. 8 observation (b)).
  EXPECT_EQ(with.fogs_added, without.fogs_added);
  EXPECT_TRUE(functionally_equivalent(net, with.net));
  EXPECT_TRUE(functionally_equivalent(net, without.net));
}

TEST(fanout_restriction, idempotent) {
  const auto net = gen::multiplier_circuit(4);
  const auto once = restrict_fanout(net, {3, true});
  const auto twice = restrict_fanout(once.net, {3, true});
  EXPECT_EQ(twice.fogs_added, 0u);
  EXPECT_EQ(twice.buffers_added, 0u);
  EXPECT_EQ(twice.net.num_components(), once.net.num_components());
}

TEST(fanout_restriction, critical_path_grows_more_for_tighter_limits) {
  const auto net = gen::multiplier_circuit(6);
  std::uint32_t previous = std::numeric_limits<std::uint32_t>::max();
  for (unsigned k : {2u, 3u, 4u, 5u}) {
    const auto result = restrict_fanout(net, {k, true});
    EXPECT_GE(result.depth_after, result.depth_before);
    EXPECT_LE(result.depth_after, previous)
        << "limit " << k << " should not be worse than " << k - 1;
    previous = result.depth_after;
    expect_restricted(result.net, k);
  }
}

TEST(fanout_restriction, pos_count_as_consumers) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  for (int i = 0; i < 4; ++i) {
    net.create_po(m, "o" + std::to_string(i));
  }
  const auto result = restrict_fanout(net, {3, true});
  // 4 PO consumers -> ceil(3/2) = 2 FOGs for m.
  EXPECT_EQ(result.fogs_added, 2u);
  expect_restricted(result.net, 3);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(fanout_restriction, rejects_limit_below_two) {
  const auto net = star_example(3);
  EXPECT_THROW(restrict_fanout(net, {1, true}), std::invalid_argument);
  EXPECT_THROW(restrict_fanout(net, {0, true}), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
