#include "wavemig/mig.hpp"

#include <gtest/gtest.h>

#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(mig_network, starts_with_constant_node_only) {
  mig_network net;
  EXPECT_EQ(net.num_nodes(), 1u);
  EXPECT_TRUE(net.is_constant(0));
  EXPECT_EQ(net.get_constant(false), constant0);
  EXPECT_EQ(net.get_constant(true), constant1);
}

TEST(mig_network, primary_inputs_have_names_and_positions) {
  mig_network net;
  const signal a = net.create_pi("alpha");
  const signal b = net.create_pi();
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.pi_name(0), "alpha");
  EXPECT_EQ(net.pi_name(1), "pi1");
  EXPECT_EQ(net.pi_position(a.index()), 0u);
  EXPECT_EQ(net.pi_position(b.index()), 1u);
}

TEST(mig_network, majority_reduces_equal_fanins) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  EXPECT_EQ(net.create_maj(a, a, b), a);   // M(x,x,y) = x
  EXPECT_EQ(net.create_maj(b, a, b), b);
  EXPECT_EQ(net.create_maj(!a, b, !a), !a);
  EXPECT_EQ(net.num_majorities(), 0u);
}

TEST(mig_network, majority_reduces_complementary_fanins) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  EXPECT_EQ(net.create_maj(a, !a, b), b);  // M(x,!x,y) = y
  EXPECT_EQ(net.create_maj(b, a, !b), a);
  EXPECT_EQ(net.create_maj(constant0, constant1, b), b);
  EXPECT_EQ(net.num_majorities(), 0u);
}

TEST(mig_network, structural_hashing_reuses_nodes) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  const signal m2 = net.create_maj(c, a, b);  // any permutation
  const signal m3 = net.create_maj(b, c, a);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m3);
  EXPECT_EQ(net.num_majorities(), 1u);
}

TEST(mig_network, self_duality_canonicalization) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  // M(!a,!b,c) must map onto the complement of M(a,b,!c): one shared node.
  const signal m1 = net.create_maj(!a, !b, c);
  const signal m2 = net.create_maj(a, b, !c);
  EXPECT_EQ(m1.index(), m2.index());
  EXPECT_NE(m1.is_complemented(), m2.is_complemented());
  EXPECT_EQ(net.num_majorities(), 1u);
  // Triple complement: M(!a,!b,!c) = !M(a,b,c).
  const signal m3 = net.create_maj(!a, !b, !c);
  const signal m4 = net.create_maj(a, b, c);
  EXPECT_EQ(m3, !m4);
}

TEST(mig_network, stored_majorities_have_at_most_one_complemented_fanin) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_maj(!a, !b, c);
  net.create_maj(!a, !b, !c);
  net.create_maj(a, !b, c);
  net.foreach_gate([&](node_index n) {
    int complemented = 0;
    for (const signal f : net.fanins(n)) {
      complemented += f.is_complemented() ? 1 : 0;
    }
    EXPECT_LE(complemented, 1);
  });
}

TEST(mig_network, and_or_are_majorities_with_constants) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  net.create_po(net.create_and(a, b), "and");
  net.create_po(net.create_or(a, b), "or");
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1));
  EXPECT_EQ(tts[1], truth_table::nth_var(2, 0) | truth_table::nth_var(2, 1));
}

TEST(mig_network, xor_and_mux_construction) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal s = net.create_pi();
  net.create_po(net.create_xor(a, b), "xor");
  net.create_po(net.create_mux(s, a, b), "mux");
  const auto tts = simulate_truth_tables(net);
  const auto ta = truth_table::nth_var(3, 0);
  const auto tb = truth_table::nth_var(3, 1);
  const auto ts = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb);
  EXPECT_EQ(tts[1], truth_table::ite(ts, ta, tb));
}

TEST(mig_network, full_adder_is_three_gates) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const auto [sum, carry] = net.create_full_adder(a, b, c);
  net.create_po(sum, "s");
  net.create_po(carry, "c");
  EXPECT_EQ(net.num_majorities(), 3u);
  const auto tts = simulate_truth_tables(net);
  const auto ta = truth_table::nth_var(3, 0);
  const auto tb = truth_table::nth_var(3, 1);
  const auto tc = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb ^ tc);
  EXPECT_EQ(tts[1], truth_table::maj(ta, tb, tc));
}

TEST(mig_network, buffers_and_fanouts_are_not_hashed) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b1 = net.create_buffer(a);
  const signal b2 = net.create_buffer(a);
  EXPECT_NE(b1, b2);
  const signal f1 = net.create_fanout(a);
  const signal f2 = net.create_fanout(a);
  EXPECT_NE(f1, f2);
  EXPECT_EQ(net.num_buffers(), 2u);
  EXPECT_EQ(net.num_fanout_gates(), 2u);
  EXPECT_EQ(net.num_components(), 4u);
}

TEST(mig_network, fanin_spans_by_kind) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  const signal buf = net.create_buffer(m);
  EXPECT_EQ(net.fanins(a.index()).size(), 0u);
  EXPECT_EQ(net.fanins(m.index()).size(), 3u);
  EXPECT_EQ(net.fanins(buf.index()).size(), 1u);
  EXPECT_EQ(net.fanins(buf.index())[0], m);
}

TEST(mig_network, po_registration_preserves_order_and_names) {
  mig_network net;
  const signal a = net.create_pi();
  EXPECT_EQ(net.create_po(a, "first"), 0u);
  EXPECT_EQ(net.create_po(!a, "second"), 1u);
  EXPECT_EQ(net.create_po(constant1), 2u);
  EXPECT_EQ(net.po_name(0), "first");
  EXPECT_EQ(net.po_name(2), "po2");
  EXPECT_EQ(net.po_signal(1), !a);
  EXPECT_EQ(net.po_signal(2), constant1);
}

TEST(mig_network, rejects_dangling_signal_references) {
  mig_network net;
  const signal bogus{99, false};
  const signal a = net.create_pi();
  EXPECT_THROW(net.create_maj(a, a, bogus), std::invalid_argument);
  EXPECT_THROW(net.create_buffer(bogus), std::invalid_argument);
  EXPECT_THROW(net.create_po(bogus), std::invalid_argument);
}

TEST(mig_network, index_order_is_topological) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  const signal m2 = net.create_maj(m1, a, b);
  const signal m3 = net.create_maj(m2, m1, c);
  net.create_po(m3);
  net.foreach_node([&](node_index n) {
    for (const signal f : net.fanins(n)) {
      EXPECT_LT(f.index(), n);
    }
  });
}

}  // namespace
}  // namespace wavemig
