#include "wavemig/io/blif.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/gen/arith.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(blif_reader, simple_and_or_cover) {
  std::stringstream ss{R"(.model test
.inputs a b c
.outputs f g
.names a b f
11 1
.names a b c g
1-- 1
-1- 1
--1 1
.end
)"};
  const auto net = io::read_blif(ss);
  ASSERT_EQ(net.num_pis(), 3u);
  ASSERT_EQ(net.num_pos(), 2u);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], a & b);
  EXPECT_EQ(tts[1], a | b | c);
}

TEST(blif_reader, offset_cover_is_complemented) {
  std::stringstream ss{R"(.model t
.inputs a b
.outputs f
.names a b f
11 0
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], ~(truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1)));
}

TEST(blif_reader, constants) {
  std::stringstream ss{R"(.model t
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a f
1 1
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], truth_table::constant(1, true));
  EXPECT_EQ(tts[1], truth_table::constant(1, false));
  EXPECT_EQ(tts[2], truth_table::nth_var(1, 0));
}

TEST(blif_reader, out_of_order_definitions_resolve) {
  std::stringstream ss{R"(.model t
.inputs a b
.outputs f
.names mid a f
11 1
.names a b mid
-1 1
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(2, 0);
  const auto b = truth_table::nth_var(2, 1);
  EXPECT_EQ(tts[0], b & a);
}

TEST(blif_reader, line_continuations_and_comments) {
  std::stringstream ss{".model t\n.inputs a \\\nb\n.outputs f # trailing comment\n"
                       ".names a b f\n11 1\n.end\n"};
  const auto net = io::read_blif(ss);
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.num_pos(), 1u);
}

TEST(blif_reader, rejects_file_ending_mid_continuation) {
  // A trailing '\' promises another line; the seed parser silently dropped
  // the whole accumulated statement at EOF.
  std::stringstream eof_continuation{".model t\n.inputs a b\n.outputs f\n"
                                     ".names a b \\"};
  EXPECT_THROW(io::read_blif(eof_continuation), io::parse_error);

  std::stringstream eof_with_newline{".model t\n.inputs a b\n.outputs f\n"
                                     ".names a b \\\n"};
  EXPECT_THROW(io::read_blif(eof_with_newline), io::parse_error);
}

TEST(blif_reader, backslash_inside_comment_is_not_a_continuation) {
  // '#' comments run to end of line, so the '\' below is commented out and
  // ".names a b f" must parse as its own complete statement.
  std::stringstream ss{".model t\n.inputs a b # two inputs \\\n.outputs f\n"
                       ".names a b f\n11 1\n.end\n"};
  const auto net = io::read_blif(ss);
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.num_pos(), 1u);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(2, 0);
  const auto b = truth_table::nth_var(2, 1);
  EXPECT_EQ(tts[0], a & b);
}

TEST(blif_reader, continuation_survives_trailing_whitespace_and_comment) {
  // "\" separated from the comment (or end of line) by whitespace is still
  // a continuation once the comment and padding are stripped.
  std::stringstream ss{".model t\n.inputs a \\ # wraps\nb\n.outputs f\n"
                       ".names a b f\n11 1\n.end\n"};
  const auto net = io::read_blif(ss);
  EXPECT_EQ(net.num_pis(), 2u);

  std::stringstream padded{".model t\n.inputs a \\\t\nb\n.outputs f\n"
                           ".names a b f\n11 1\n.end\n"};
  EXPECT_EQ(io::read_blif(padded).num_pis(), 2u);
}

TEST(blif_writer, internal_names_never_collide_with_user_names) {
  // Adversarial PI/PO names: "n<k>" shaped like internal node names, "_b"
  // suffixes shaped like shared-inverter names, and the constant names.
  mig_network net;
  const signal n7 = net.create_pi("n7");
  const signal n3 = net.create_pi("n3");
  const signal n3_b = net.create_pi("n3_b");
  const signal c0 = net.create_pi("const0");
  net.create_po(net.create_maj(n7, n3, n3_b), "n5");
  net.create_po(net.create_maj(!n7, c0, constant1), "const1");
  net.create_po(!n3, "n7_b");

  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  ASSERT_EQ(back.num_pis(), net.num_pis());
  ASSERT_EQ(back.num_pos(), net.num_pos());
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, sanitizes_unprintable_user_names) {
  // Whitespace or '#' inside a name would change the token structure of the
  // written file; the writer must emit something that parses back.
  mig_network net;
  const signal a = net.create_pi("a b");
  const signal b = net.create_pi("x#y");
  const signal c = net.create_pi("tab\there");
  net.create_po(net.create_maj(a, b, c), "out 1");

  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  ASSERT_EQ(back.num_pis(), 3u);
  ASSERT_EQ(back.num_pos(), 1u);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, uniquifies_duplicate_user_names) {
  mig_network net;
  const signal a = net.create_pi("sig");
  const signal b = net.create_pi("sig");  // duplicate PI name
  const signal c = net.create_pi("c");
  net.create_po(net.create_maj(a, b, c), "sig");  // PO colliding with PIs

  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  ASSERT_EQ(back.num_pis(), 3u);
  ASSERT_EQ(back.num_pos(), 1u);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_reader, rejects_sequential_and_hierarchy) {
  std::stringstream latch{".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"};
  EXPECT_THROW(io::read_blif(latch), io::parse_error);
  std::stringstream sub{".model t\n.inputs a\n.outputs q\n.subckt foo x=a y=q\n.end\n"};
  EXPECT_THROW(io::read_blif(sub), io::parse_error);
}

TEST(blif_reader, rejects_undefined_output_and_cycles) {
  std::stringstream undef{".model t\n.inputs a\n.outputs f\n.end\n"};
  EXPECT_THROW(io::read_blif(undef), io::parse_error);
  std::stringstream cycle{
      ".model t\n.inputs a\n.outputs f\n.names g a f\n11 1\n.names f a g\n11 1\n.end\n"};
  EXPECT_THROW(io::read_blif(cycle), io::parse_error);
}

TEST(blif_reader, rejects_malformed_cubes) {
  std::stringstream bad_char{".model t\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_char), io::parse_error);
  std::stringstream bad_width{".model t\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_width), io::parse_error);
  std::stringstream mixed{".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"};
  EXPECT_THROW(io::read_blif(mixed), io::parse_error);
}

TEST(blif_writer, round_trips_through_own_reader) {
  const auto net = gen::multiplier_circuit(4);
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, physical_netlists_round_trip) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal m = net.create_maj(!a, b, c);
  const signal buf = net.create_buffer(m);
  const signal fog = net.create_fanout(buf);
  net.create_po(!fog, "f");
  net.create_po(fog, "g");
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, majority_gates_use_three_cubes) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  net.create_po(net.create_maj(a, b, c), "f");
  std::stringstream ss;
  io::write_blif(net, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("11- 1"), std::string::npos);
  EXPECT_NE(text.find("1-1 1"), std::string::npos);
  EXPECT_NE(text.find("-11 1"), std::string::npos);
}

TEST(blif_writer, constants_and_complements_materialize) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  net.create_po(net.create_or(!a, b), "f");  // OR uses const1; !a an inverter
  net.create_po(constant0, "zero");
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

}  // namespace
}  // namespace wavemig
