#include "wavemig/io/blif.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/gen/arith.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(blif_reader, simple_and_or_cover) {
  std::stringstream ss{R"(.model test
.inputs a b c
.outputs f g
.names a b f
11 1
.names a b c g
1-- 1
-1- 1
--1 1
.end
)"};
  const auto net = io::read_blif(ss);
  ASSERT_EQ(net.num_pis(), 3u);
  ASSERT_EQ(net.num_pos(), 2u);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], a & b);
  EXPECT_EQ(tts[1], a | b | c);
}

TEST(blif_reader, offset_cover_is_complemented) {
  std::stringstream ss{R"(.model t
.inputs a b
.outputs f
.names a b f
11 0
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], ~(truth_table::nth_var(2, 0) & truth_table::nth_var(2, 1)));
}

TEST(blif_reader, constants) {
  std::stringstream ss{R"(.model t
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a f
1 1
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], truth_table::constant(1, true));
  EXPECT_EQ(tts[1], truth_table::constant(1, false));
  EXPECT_EQ(tts[2], truth_table::nth_var(1, 0));
}

TEST(blif_reader, out_of_order_definitions_resolve) {
  std::stringstream ss{R"(.model t
.inputs a b
.outputs f
.names mid a f
11 1
.names a b mid
-1 1
.end
)"};
  const auto net = io::read_blif(ss);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(2, 0);
  const auto b = truth_table::nth_var(2, 1);
  EXPECT_EQ(tts[0], b & a);
}

TEST(blif_reader, line_continuations_and_comments) {
  std::stringstream ss{".model t\n.inputs a \\\nb\n.outputs f # trailing comment\n"
                       ".names a b f\n11 1\n.end\n"};
  const auto net = io::read_blif(ss);
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.num_pos(), 1u);
}

TEST(blif_reader, rejects_sequential_and_hierarchy) {
  std::stringstream latch{".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"};
  EXPECT_THROW(io::read_blif(latch), io::parse_error);
  std::stringstream sub{".model t\n.inputs a\n.outputs q\n.subckt foo x=a y=q\n.end\n"};
  EXPECT_THROW(io::read_blif(sub), io::parse_error);
}

TEST(blif_reader, rejects_undefined_output_and_cycles) {
  std::stringstream undef{".model t\n.inputs a\n.outputs f\n.end\n"};
  EXPECT_THROW(io::read_blif(undef), io::parse_error);
  std::stringstream cycle{
      ".model t\n.inputs a\n.outputs f\n.names g a f\n11 1\n.names f a g\n11 1\n.end\n"};
  EXPECT_THROW(io::read_blif(cycle), io::parse_error);
}

TEST(blif_reader, rejects_malformed_cubes) {
  std::stringstream bad_char{".model t\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_char), io::parse_error);
  std::stringstream bad_width{".model t\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n"};
  EXPECT_THROW(io::read_blif(bad_width), io::parse_error);
  std::stringstream mixed{".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n"};
  EXPECT_THROW(io::read_blif(mixed), io::parse_error);
}

TEST(blif_writer, round_trips_through_own_reader) {
  const auto net = gen::multiplier_circuit(4);
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, physical_netlists_round_trip) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal m = net.create_maj(!a, b, c);
  const signal buf = net.create_buffer(m);
  const signal fog = net.create_fanout(buf);
  net.create_po(!fog, "f");
  net.create_po(fog, "g");
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(blif_writer, majority_gates_use_three_cubes) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  net.create_po(net.create_maj(a, b, c), "f");
  std::stringstream ss;
  io::write_blif(net, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("11- 1"), std::string::npos);
  EXPECT_NE(text.find("1-1 1"), std::string::npos);
  EXPECT_NE(text.find("-11 1"), std::string::npos);
}

TEST(blif_writer, constants_and_complements_materialize) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  net.create_po(net.create_or(!a, b), "f");  // OR uses const1; !a an inverter
  net.create_po(constant0, "zero");
  std::stringstream ss;
  io::write_blif(net, ss);
  const auto back = io::read_blif(ss);
  EXPECT_TRUE(functionally_equivalent(net, back));
}

}  // namespace
}  // namespace wavemig
