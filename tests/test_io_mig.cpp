#include "wavemig/io/mig_format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

mig_network round_trip(const mig_network& net) {
  std::stringstream ss;
  io::write_mig(net, ss);
  return io::read_mig(ss);
}

TEST(mig_format, round_trips_logic_networks) {
  const auto net = gen::multiplier_circuit(5);
  const auto back = round_trip(net);
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  EXPECT_EQ(back.num_majorities(), net.num_majorities());
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(mig_format, round_trips_physical_netlists) {
  // Buffers and FOGs (never hashed) must survive exactly.
  auto piped = restrict_fanout(gen::multiplier_circuit(4), {3, true});
  auto balanced = insert_buffers(piped.net);
  const auto back = round_trip(balanced.net);
  EXPECT_EQ(back.num_buffers(), balanced.net.num_buffers());
  EXPECT_EQ(back.num_fanout_gates(), balanced.net.num_fanout_gates());
  EXPECT_EQ(compute_levels(back).depth, compute_levels(balanced.net).depth);
  EXPECT_TRUE(functionally_equivalent(balanced.net, back));
}

TEST(mig_format, preserves_names) {
  mig_network net;
  const signal x = net.create_pi("clock_en");
  const signal y = net.create_pi("data_in");
  const signal z = net.create_pi("sel");
  net.create_po(net.create_maj(x, y, z), "vote_out");
  const auto back = round_trip(net);
  EXPECT_EQ(back.pi_name(0), "clock_en");
  EXPECT_EQ(back.pi_name(2), "sel");
  EXPECT_EQ(back.po_name(0), "vote_out");
}

TEST(mig_format, handles_constants_and_complements) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  net.create_po(net.create_and(!a, b), "f");
  net.create_po(constant1, "one");
  net.create_po(!net.create_or(a, !b), "g");
  const auto back = round_trip(net);
  EXPECT_TRUE(functionally_equivalent(net, back));
  EXPECT_EQ(back.po_signal(1), constant1);
}

TEST(mig_format, written_text_is_structured) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal m = net.create_maj(a, b, c);
  net.create_buffer(m);
  net.create_po(m, "f");
  std::stringstream ss;
  io::write_mig(net, ss, "example");
  const std::string text = ss.str();
  EXPECT_NE(text.find(".model example"), std::string::npos);
  EXPECT_NE(text.find(".inputs a b c"), std::string::npos);
  EXPECT_NE(text.find("= MAJ(a, b, c)"), std::string::npos);
  EXPECT_NE(text.find("= BUF("), std::string::npos);
  EXPECT_NE(text.find(".output f ="), std::string::npos);
}

TEST(mig_format, parses_comments_and_whitespace) {
  std::stringstream ss{R"(# header comment
.model t
.inputs a b c

# gate section
n1 = MAJ(a, !b, c)
n2 = BUF(n1)
n3 = FOG(n2)
.output f = !n3
)"};
  const auto net = io::read_mig(ss);
  EXPECT_EQ(net.num_pis(), 3u);
  EXPECT_EQ(net.num_majorities(), 1u);
  EXPECT_EQ(net.num_buffers(), 1u);
  EXPECT_EQ(net.num_fanout_gates(), 1u);
  EXPECT_TRUE(net.po_signal(0).is_complemented());
}

TEST(mig_format, error_use_before_definition) {
  std::stringstream ss{".inputs a b\nn1 = MAJ(a, b, n2)\nn2 = BUF(n1)\n.output f = n1\n"};
  EXPECT_THROW(io::read_mig(ss), io::parse_error);
}

TEST(mig_format, error_redefinition) {
  std::stringstream ss{".inputs a b c\nn1 = MAJ(a, b, c)\nn1 = BUF(a)\n.output f = n1\n"};
  EXPECT_THROW(io::read_mig(ss), io::parse_error);
}

TEST(mig_format, error_wrong_arity) {
  std::stringstream ss{".inputs a b\nn1 = MAJ(a, b)\n.output f = n1\n"};
  EXPECT_THROW(io::read_mig(ss), io::parse_error);
  std::stringstream ss2{".inputs a\nn1 = BUF(a, a)\n.output f = n1\n"};
  EXPECT_THROW(io::read_mig(ss2), io::parse_error);
}

TEST(mig_format, error_unknown_kind_and_garbage) {
  std::stringstream ss{".inputs a b c\nn1 = NAND(a, b, c)\n.output f = n1\n"};
  EXPECT_THROW(io::read_mig(ss), io::parse_error);
  std::stringstream ss2{"this is not a netlist\n"};
  EXPECT_THROW(io::read_mig(ss2), io::parse_error);
}

TEST(mig_format, parse_error_reports_line_number) {
  std::stringstream ss{".inputs a b\n\nn1 = MAJ(a, b, zz)\n"};
  try {
    io::read_mig(ss);
    FAIL() << "expected parse_error";
  } catch (const io::parse_error& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(mig_format, file_round_trip) {
  const auto net = gen::ripple_adder_circuit(6);
  const std::string path = ::testing::TempDir() + "wavemig_io_test.mig";
  io::write_mig_file(net, path);
  const auto back = io::read_mig_file(path);
  EXPECT_TRUE(functionally_equivalent(net, back));
  EXPECT_THROW(io::read_mig_file("/nonexistent/path.mig"), std::runtime_error);
}

}  // namespace
}  // namespace wavemig
