// Coverage for the network serving front-end (net/): the wire protocol's
// encode/decode pair, the loopback differential pin (wire responses
// bit-identical to in-process submit_packed), hostile-bytes framing
// behavior, the production policies mapped onto the serving layer
// (admission, deadlines, draining), and graceful-shutdown flushing. The
// server/client threading runs under the TSan CI job alongside
// test_parallel_engine and test_serving.

#include "wavemig/net/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iterator>
#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/net/client.hpp"
#include "wavemig/net/protocol.hpp"
#include "wavemig/net/socket.hpp"
#include "wavemig/tech_scenario.hpp"

namespace wavemig {
namespace {

/// Random plane-major words for `num_pis` planes of `num_waves` waves, tail
/// bits cleared so they pass strict validation unchanged.
std::vector<std::uint64_t> random_planes(std::size_t num_pis, std::size_t num_waves,
                                         std::uint64_t seed) {
  const std::size_t chunks = (num_waves + 63) / 64;
  std::mt19937_64 rng{seed};
  std::vector<std::uint64_t> words(num_pis * chunks);
  for (auto& word : words) {
    word = rng();
  }
  if (const std::size_t tail = num_waves % 64; tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    for (std::size_t p = 0; p < num_pis; ++p) {
      words[(p + 1) * chunks - 1] &= mask;
    }
  }
  return words;
}

std::string mig_text(const mig_network& net) {
  std::ostringstream os;
  io::write_mig(net, os);
  return os.str();
}

/// One executor + session + server stack on an ephemeral loopback port.
struct loopback_stack {
  explicit loopback_stack(unsigned workers = 2, unsigned dispatchers = 1,
                          net::server_options options = {})
      : executor{workers},
        serving{executor, {}, {}, dispatchers},
        server{serving, options} {}

  engine::parallel_executor executor;
  engine::serving_session serving;
  net::wire_server server;
};

net::run_request make_run(std::uint64_t fingerprint, const mig_network& net,
                          std::size_t num_waves, unsigned phases,
                          std::vector<std::uint64_t> payload) {
  net::run_request req;
  req.fingerprint = fingerprint;
  req.num_pis = static_cast<std::uint32_t>(net.num_pis());
  req.num_waves = num_waves;
  req.phases = phases;
  req.payload = std::move(payload);
  return req;
}

// ------------------------------------------------- protocol round trips ---

TEST(wire_protocol, run_frame_round_trips_through_encode_and_decode) {
  net::run_request req;
  req.id = 7;
  req.priority = 3;
  req.flags = net::run_flag_mask_tail_bits;
  req.deadline_ms = 250;
  req.phases = 4;
  req.num_pis = 9;
  req.fingerprint = 0x1122334455667788ull;
  req.num_waves = 130;
  req.scenario = "SWD";
  req.netlist = "# inline\n";
  req.payload = {1, 2, 3};

  auto frame = net::encode_run_frame_prefix(req);
  const std::size_t payload_at = frame.size();
  frame.resize(frame.size() + req.payload.size() * sizeof(std::uint64_t));
  std::memcpy(frame.data() + payload_at, req.payload.data(),
              req.payload.size() * sizeof(std::uint64_t));

  // Decode skips the u32 length word the encoder prepended.
  net::run_request out;
  const std::size_t body_size = frame.size() - 4;
  const std::size_t payload_offset = net::decode_run_body(frame.data() + 4, body_size, out);
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.priority, req.priority);
  EXPECT_EQ(out.flags, req.flags);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
  EXPECT_EQ(out.phases, req.phases);
  EXPECT_EQ(out.num_pis, req.num_pis);
  EXPECT_EQ(out.fingerprint, req.fingerprint);
  EXPECT_EQ(out.num_waves, req.num_waves);
  EXPECT_EQ(out.scenario, req.scenario);
  EXPECT_EQ(out.netlist, req.netlist);
  EXPECT_EQ(body_size - payload_offset, req.payload.size() * sizeof(std::uint64_t));

  // Truncations and length disagreements are protocol errors, not UB.
  EXPECT_THROW((void)net::decode_run_body(frame.data() + 4, net::run_fixed_bytes - 2, out),
               net::protocol_error);
  EXPECT_THROW((void)net::decode_run_body(frame.data() + 4, net::run_fixed_bytes + 1, out),
               net::protocol_error);
}

TEST(wire_protocol, response_frames_round_trip_for_ok_and_error) {
  net::wire_response ok;
  ok.id = 11;
  ok.status = net::wire_status::ok;
  ok.fingerprint = 42;
  ok.result.num_pos = 2;
  ok.result.num_waves = 65;
  ok.result.words = {5, 6, 7, 8};
  ok.result.ticks = 99;
  ok.result.latency_ticks = 12;
  ok.result.initiation_interval = 1;
  ok.result.waves_in_flight = 12;

  auto frame = net::encode_response_frame_prefix(ok);
  const std::size_t words_at = frame.size();
  frame.resize(frame.size() + ok.result.words.size() * sizeof(std::uint64_t));
  std::memcpy(frame.data() + words_at, ok.result.words.data(),
              ok.result.words.size() * sizeof(std::uint64_t));
  const auto round = net::decode_response_body(frame.data() + 4, frame.size() - 4);
  EXPECT_EQ(round.id, ok.id);
  EXPECT_EQ(round.status, net::wire_status::ok);
  EXPECT_EQ(round.fingerprint, ok.fingerprint);
  EXPECT_EQ(round.result.words, ok.result.words);
  EXPECT_EQ(round.result.num_waves, ok.result.num_waves);
  EXPECT_EQ(round.result.ticks, ok.result.ticks);

  net::wire_response err;
  err.id = 12;
  err.status = net::wire_status::admission_rejected;
  err.message = "backlog full";
  const auto err_frame = net::encode_response_frame_prefix(err);
  const auto err_round = net::decode_response_body(err_frame.data() + 4, err_frame.size() - 4);
  EXPECT_EQ(err_round.id, err.id);
  EXPECT_EQ(err_round.status, net::wire_status::admission_rejected);
  EXPECT_EQ(err_round.message, err.message);
}

// ------------------------------------------------- the differential pin ---

/// The acceptance pin: responses served over loopback are bit-identical to
/// in-process submit_packed — same words, same clock metrics — at the chunk
/// boundary wave counts, per program, per scenario (untagged + two named).
TEST(wire_differential, loopback_matches_in_process_submit_packed) {
  loopback_stack stack{2, 2};
  auto client = net::wire_client::connect(stack.server.port());

  const auto adder = std::make_shared<const mig_network>(gen::ripple_adder_circuit(5));
  const auto random = std::make_shared<const mig_network>(
      gen::random_mig({12, 120, 0.5, 6, 2026}));
  const std::vector<std::pair<std::shared_ptr<const mig_network>, std::uint64_t>> programs = {
      {adder, client.register_program(*adder)},
      {random, client.register_program(*random)},
  };
  const std::vector<std::string> scenarios = {"", "SWD", "QCA"};
  const std::size_t wave_counts[] = {1, 63, 64, 65, 511};

  std::uint64_t seed = 1;
  for (const auto& [net, fingerprint] : programs) {
    for (const auto& scenario : scenarios) {
      for (const std::size_t waves : wave_counts) {
        const auto words = random_planes(net->num_pis(), waves, seed++);

        auto req = make_run(fingerprint, *net, waves, 3, words);
        req.scenario = scenario;
        const auto resp = client.run(std::move(req));
        ASSERT_EQ(resp.status, net::wire_status::ok)
            << net::to_string(resp.status) << ": " << resp.message;

        engine::submit_options opts;
        if (!scenario.empty()) {
          opts.scenario =
              std::make_shared<const tech_scenario>(tech_scenario::by_name(scenario));
        }
        const auto want =
            stack.serving.submit_packed(net, words, waves, 3, std::move(opts)).get();
        EXPECT_EQ(resp.result.words, want.words)
            << "waves=" << waves << " scenario=" << scenario;
        EXPECT_EQ(resp.result.num_waves, want.num_waves);
        EXPECT_EQ(resp.result.num_pos, want.num_pos);
        EXPECT_EQ(resp.result.ticks, want.ticks);
        EXPECT_EQ(resp.result.latency_ticks, want.latency_ticks);
        EXPECT_EQ(resp.result.initiation_interval, want.initiation_interval);
        EXPECT_EQ(resp.result.waves_in_flight, want.waves_in_flight);
        EXPECT_EQ(resp.fingerprint, fingerprint);
      }
    }
  }
  EXPECT_EQ(stack.server.stats().requests_refused, 0u);
}

/// Pipelined multi-client traffic: several clients each stream interleaved
/// requests over two programs; responses are matched by id and must still be
/// bit-identical to the in-process reference. TSan food for the
/// reader/writer/worker handoff.
TEST(wire_differential, concurrent_clients_pipeline_without_cross_talk) {
  loopback_stack stack{4, 2};

  const auto adder = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const auto parity = std::make_shared<const mig_network>(
      gen::random_mig({9, 60, 0.5, 4, 7}));

  constexpr int clients = 4;
  constexpr int per_client = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        auto client = net::wire_client::connect(stack.server.port());
        const std::uint64_t adder_fp = client.register_program(*adder);
        const std::uint64_t parity_fp = client.register_program(*parity);
        std::vector<std::uint64_t> ids;
        std::vector<std::vector<std::uint64_t>> payloads;
        std::vector<std::shared_ptr<const mig_network>> nets;
        std::vector<std::size_t> counts;
        for (int i = 0; i < per_client; ++i) {
          const auto& net = (i % 2 == 0) ? adder : parity;
          const std::size_t waves = 30 + 17 * static_cast<std::size_t>(i);
          const auto words =
              random_planes(net->num_pis(), waves,
                            static_cast<std::uint64_t>(c) * 100 + static_cast<std::uint64_t>(i));
          auto req = make_run((i % 2 == 0) ? adder_fp : parity_fp, *net, waves, 3, words);
          ids.push_back(client.send(std::move(req)));
          payloads.push_back(words);
          nets.push_back(net);
          counts.push_back(waves);
        }
        // Drain the pipelined responses (completion order, matched by id)
        // and hold each against the in-process reference.
        for (int drained = 0; drained < per_client; ++drained) {
          const auto resp = client.receive();
          if (resp.status != net::wire_status::ok) {
            failures[c] = resp.message;
            return;
          }
          int i = -1;
          for (int k = 0; k < per_client; ++k) {
            if (ids[k] == resp.id) {
              i = k;
              break;
            }
          }
          if (i < 0) {
            failures[c] = "response id matches no request";
            return;
          }
          const auto want =
              stack.serving.submit_packed(nets[i], payloads[i], counts[i], 3).get();
          if (resp.result.words != want.words) {
            failures[c] = "result words diverge from the in-process reference";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int c = 0; c < clients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
}

// ----------------------------------------------------- program registry ---

TEST(wire_registry, register_echoes_the_structural_fingerprint) {
  loopback_stack stack;
  auto client = net::wire_client::connect(stack.server.port());

  const auto net = gen::ripple_adder_circuit(6);
  const std::uint64_t fp = client.register_program(net);
  EXPECT_EQ(fp, engine::network_fingerprint(net));
  EXPECT_EQ(stack.server.num_programs(), 1u);

  // Re-registration is idempotent: same fingerprint, no second entry.
  EXPECT_EQ(client.register_program(net), fp);
  EXPECT_EQ(stack.server.num_programs(), 1u);
  EXPECT_EQ(stack.server.stats().programs_registered, 1u);

  EXPECT_THROW((void)client.register_netlist("x = WAT(a, b, c)\n"), net::wire_error);
}

TEST(wire_registry, inline_netlists_register_and_echo_their_fingerprint) {
  loopback_stack stack;
  auto client = net::wire_client::connect(stack.server.port());

  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(3));
  const std::size_t waves = 70;
  const auto words = random_planes(net->num_pis(), waves, 31);

  auto req = make_run(0, *net, waves, 3, words);
  req.netlist = mig_text(*net);
  const auto resp = client.run(std::move(req));
  ASSERT_EQ(resp.status, net::wire_status::ok) << resp.message;
  EXPECT_EQ(resp.fingerprint, engine::network_fingerprint(*net));
  EXPECT_EQ(stack.server.num_programs(), 1u);

  // The echoed fingerprint works for 8-byte-header runs from then on.
  const auto by_fp = client.run(make_run(resp.fingerprint, *net, waves, 3, words));
  ASSERT_EQ(by_fp.status, net::wire_status::ok) << by_fp.message;
  EXPECT_EQ(by_fp.result.words, resp.result.words);

  const auto unknown = client.run(make_run(0xDEAD'BEEFu, *net, waves, 3, words));
  EXPECT_EQ(unknown.status, net::wire_status::unknown_program);
  EXPECT_FALSE(unknown.message.empty());
}

// ----------------------------------------------- request-level refusals ---

TEST(wire_refusals, bad_requests_map_to_exact_statuses) {
  loopback_stack stack;
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);

  // Unknown scenario name.
  auto bad_scenario = make_run(fp, *net, 64, 3, random_planes(net->num_pis(), 64, 1));
  bad_scenario.scenario = "warp-drive";
  EXPECT_EQ(client.run(std::move(bad_scenario)).status, net::wire_status::unknown_scenario);

  // Zero waves: decodes fine, rejected on the dispatcher.
  EXPECT_EQ(client.run(make_run(fp, *net, 0, 3, {})).status,
            net::wire_status::invalid_request);

  // Word count inconsistent with the declared wave count.
  EXPECT_EQ(client.run(make_run(fp, *net, 64, 3, std::vector<std::uint64_t>(3, 0))).status,
            net::wire_status::invalid_request);

  // PI-plane count inconsistent with the program.
  EXPECT_EQ(client
                .run(make_run(fp, *net, 64, 3,
                              std::vector<std::uint64_t>(net->num_pis() + 1, 0)))
                .status,
            net::wire_status::invalid_request);

  // The connection survives every refusal: a healthy request still runs.
  EXPECT_EQ(client.run(make_run(fp, *net, 64, 3, random_planes(net->num_pis(), 64, 2))).status,
            net::wire_status::ok);
  EXPECT_GE(stack.server.stats().requests_refused, 4u);
}

TEST(wire_refusals, stray_tail_bits_reject_unless_masking_is_requested) {
  loopback_stack stack;
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);

  const std::size_t waves = 70;  // 6 stray bit positions in the last chunk
  auto words = random_planes(net->num_pis(), waves, 5);
  const auto clean = words;
  words[1] |= ~((std::uint64_t{1} << (waves % 64)) - 1);  // garbage above wave 69

  // Strict default: untrusted payloads with stray bits are rejected.
  const auto rejected = client.run(make_run(fp, *net, waves, 3, words));
  EXPECT_EQ(rejected.status, net::wire_status::invalid_request);
  EXPECT_NE(rejected.message.find("stray bits"), std::string::npos) << rejected.message;

  // Opting into masking reproduces the trusted in-process default.
  auto masked = make_run(fp, *net, waves, 3, words);
  masked.flags = net::run_flag_mask_tail_bits;
  const auto resp = client.run(std::move(masked));
  ASSERT_EQ(resp.status, net::wire_status::ok) << resp.message;
  const auto want = stack.serving.submit_packed(net, clean, waves, 3).get();
  EXPECT_EQ(resp.result.words, want.words);
}

// ------------------------------------------------------- hostile framing ---

/// Raw-socket helpers for speaking deliberately broken bytes at the server.
net::tcp_socket raw_handshake(std::uint16_t port) {
  auto sock = net::tcp_socket::connect("127.0.0.1", port);
  std::vector<std::uint8_t> preamble;
  net::byte_writer w{preamble};
  w.u32(net::wire_magic);
  w.u32(net::wire_version);
  sock.write_all(preamble.data(), preamble.size());
  std::uint8_t echo[8];
  EXPECT_TRUE(sock.read_exact(echo, sizeof echo));
  return sock;
}

net::wire_response read_raw_response(net::tcp_socket& sock) {
  std::uint8_t len_bytes[4];
  EXPECT_TRUE(sock.read_exact(len_bytes, sizeof len_bytes));
  net::byte_reader r{len_bytes, sizeof len_bytes};
  const std::uint32_t body_len = r.u32();
  std::vector<std::uint8_t> body(body_len);
  EXPECT_TRUE(sock.read_exact(body.data(), body.size()));
  return net::decode_response_body(body.data(), body.size());
}

void write_frame(net::tcp_socket& sock, const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> len;
  net::byte_writer w{len};
  w.u32(static_cast<std::uint32_t>(body.size()));
  sock.write_all(len.data(), len.size());
  sock.write_all(body.data(), body.size());
}

TEST(wire_framing, handshake_mismatch_closes_the_connection) {
  loopback_stack stack;
  auto sock = net::tcp_socket::connect("127.0.0.1", stack.server.port());
  std::vector<std::uint8_t> preamble;
  net::byte_writer w{preamble};
  w.u32(0xBADC0DEu);
  w.u32(net::wire_version);
  sock.write_all(preamble.data(), preamble.size());
  std::uint8_t byte = 0;
  EXPECT_FALSE(sock.read_exact(&byte, 1));  // no echo, just EOF
}

TEST(wire_framing, unknown_kinds_and_short_frames_are_answered_and_survivable) {
  loopback_stack stack;
  auto sock = raw_handshake(stack.server.port());

  // Unknown frame kind: refused, stream stays synchronized.
  write_frame(sock, {0x77, 1, 2, 3});
  EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);

  // Run frame shorter than its fixed header.
  write_frame(sock, {static_cast<std::uint8_t>(net::frame_kind::run), 1, 2, 3});
  EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);

  // Register frame shorter than its fixed header.
  write_frame(sock, {static_cast<std::uint8_t>(net::frame_kind::register_program), 9});
  EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);

  // Run frame whose variable lengths disagree with the body length.
  {
    net::run_request req;
    req.id = 5;
    req.num_waves = 64;
    req.num_pis = 4;
    req.netlist = "ignored";
    auto prefix = net::encode_run_frame_prefix(req);
    // Rewrite the length word to drop the netlist bytes the header promises.
    std::vector<std::uint8_t> patched;
    net::byte_writer w{patched};
    w.u32(static_cast<std::uint32_t>(net::run_fixed_bytes));
    std::copy(prefix.begin() + 4, prefix.begin() + 4 + static_cast<long>(net::run_fixed_bytes),
              std::back_inserter(patched));
    sock.write_all(patched.data(), patched.size());
    EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);
  }

  // A payload that is not a whole number of 64-bit words.
  {
    std::vector<std::uint8_t> body(net::run_fixed_bytes + 3, 0);
    body[0] = static_cast<std::uint8_t>(net::frame_kind::run);
    write_frame(sock, body);
    EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);
  }

  // After all that abuse, a well-formed register frame still succeeds.
  net::register_request reg;
  reg.id = 1234;
  reg.netlist = mig_text(gen::ripple_adder_circuit(2));
  const auto frame = net::encode_register_frame(reg);
  sock.write_all(frame.data(), frame.size());
  const auto resp = read_raw_response(sock);
  EXPECT_EQ(resp.status, net::wire_status::ok);
  EXPECT_EQ(resp.id, reg.id);
  EXPECT_EQ(stack.server.stats().requests_refused, 5u);
}

TEST(wire_framing, oversized_length_prefix_is_refused_and_closes) {
  net::server_options options;
  options.max_frame_bytes = 4096;
  loopback_stack stack{2, 1, options};
  auto sock = raw_handshake(stack.server.port());

  std::vector<std::uint8_t> len;
  net::byte_writer w{len};
  w.u32(std::uint32_t{1} << 30);  // a length we refuse to read past
  sock.write_all(len.data(), len.size());
  EXPECT_EQ(read_raw_response(sock).status, net::wire_status::malformed_frame);
  std::uint8_t byte = 0;
  EXPECT_FALSE(sock.read_exact(&byte, 1));  // connection closed behind it

  // A zero length prefix is equally unrecoverable.
  auto sock2 = raw_handshake(stack.server.port());
  std::vector<std::uint8_t> zero;
  net::byte_writer w2{zero};
  w2.u32(0);
  sock2.write_all(zero.data(), zero.size());
  EXPECT_EQ(read_raw_response(sock2).status, net::wire_status::malformed_frame);
  EXPECT_FALSE(sock2.read_exact(&byte, 1));
}

TEST(wire_framing, truncated_frames_drop_the_connection_but_not_the_server) {
  loopback_stack stack;
  {
    auto sock = raw_handshake(stack.server.port());
    // Promise 100 body bytes, deliver 10, and hang up mid-frame.
    std::vector<std::uint8_t> partial;
    net::byte_writer w{partial};
    w.u32(100);
    partial.resize(partial.size() + 10,
                   static_cast<std::uint8_t>(net::frame_kind::run));
    sock.write_all(partial.data(), partial.size());
    sock.shutdown_both();
    std::uint8_t byte = 0;
    EXPECT_FALSE(sock.read_exact(&byte, 1));  // nothing to answer, clean EOF
  }

  // The server sheds the broken connection and keeps serving new ones.
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(3));
  const std::uint64_t fp = client.register_program(*net);
  const auto words = random_planes(net->num_pis(), 64, 77);
  EXPECT_EQ(client.run(make_run(fp, *net, 64, 3, words)).status, net::wire_status::ok);
  EXPECT_EQ(stack.server.stats().connections_accepted, 2u);
}

// -------------------------------------------------- production policies ---

TEST(wire_policies, admission_bound_rejects_with_the_exact_status) {
  loopback_stack stack{1, 1};
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);

  // Warm the compiled program, then park the lone worker so a submitted
  // request stays pending for as long as we need.
  const auto warm = random_planes(net->num_pis(), 64, 1);
  ASSERT_EQ(client.run(make_run(fp, *net, 64, 3, warm)).status, net::wire_status::ok);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  stack.executor.submit([released](unsigned) { released.wait(); });

  auto held = stack.serving.submit_packed(net, warm, 64, 3);
  stack.serving.set_admission_limit(1);  // backlog is already 1

  const auto resp = client.run(make_run(fp, *net, 64, 3, warm));
  EXPECT_EQ(resp.status, net::wire_status::admission_rejected);
  EXPECT_NE(resp.message.find("admission rejected"), std::string::npos) << resp.message;
  EXPECT_EQ(stack.serving.metrics().requests_rejected, 1u);

  // Lifting the bound restores service; the held request still completes.
  stack.serving.set_admission_limit(0);
  release.set_value();
  EXPECT_EQ(held.get().num_waves, 64u);
  EXPECT_EQ(client.run(make_run(fp, *net, 64, 3, warm)).status, net::wire_status::ok);
}

TEST(wire_policies, deadlines_expire_in_the_queue_with_the_exact_status) {
  loopback_stack stack{1, 1};
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);
  const auto warm = random_planes(net->num_pis(), 64, 1);
  ASSERT_EQ(client.run(make_run(fp, *net, 64, 3, warm)).status, net::wire_status::ok);

  // Park the worker, then wedge the lone dispatcher: big singleton requests
  // (too wide to coalesce) fill the in-flight cap (4 with one worker) and
  // the fifth blocks the dispatcher in launch_unit. Submitting one at a
  // time and waiting for its gulp keeps the accounting deterministic.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  stack.executor.submit([released](unsigned) { released.wait(); });
  const std::uint64_t gulps_before = stack.serving.metrics().gulps;
  std::vector<std::future<engine::packed_wave_result>> blockers;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    blockers.push_back(
        stack.serving.submit_packed(net, random_planes(net->num_pis(), 520, i), 520, 3));
    while (stack.serving.metrics().gulps < gulps_before + i) {
      std::this_thread::yield();
    }
  }

  // This request sits in the queue past its deadline; the dispatcher must
  // fail it at pickup instead of executing it.
  auto doomed = make_run(fp, *net, 64, 3, warm);
  doomed.deadline_ms = 5;
  const std::uint64_t id = client.send(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  release.set_value();

  const auto resp = client.receive();
  EXPECT_EQ(resp.id, id);
  EXPECT_EQ(resp.status, net::wire_status::deadline_expired);
  for (auto& blocker : blockers) {
    EXPECT_EQ(blocker.get().num_waves, 520u);
  }
  EXPECT_EQ(stack.serving.metrics().requests_expired, 1u);
}

TEST(wire_policies, draining_refuses_new_work_while_accepted_work_flushes) {
  loopback_stack stack{1, 1};
  auto client = net::wire_client::connect(stack.server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);
  const auto words = random_planes(net->num_pis(), 64, 9);
  const auto want = client.run(make_run(fp, *net, 64, 3, words));
  ASSERT_EQ(want.status, net::wire_status::ok);
  // The warm response can arrive before the session retires its request, so
  // quiesce first — the pending() wait below must observe the next request,
  // not this one's tail.
  stack.serving.drain();

  // Park the worker and submit a request that will still be in flight when
  // the drain begins: its response must flow, the next request must not.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  stack.executor.submit([released](unsigned) { released.wait(); });
  const std::uint64_t accepted_id = client.send(make_run(fp, *net, 64, 3, words));
  while (stack.serving.pending() == 0) {
    std::this_thread::yield();  // accepted before the drain begins, not raced
  }

  stack.server.begin_drain();
  const auto refused = client.run(make_run(fp, *net, 64, 3, words));
  EXPECT_EQ(refused.status, net::wire_status::draining);
  EXPECT_EQ(refused.message, "server is draining");
  EXPECT_THROW((void)client.register_program(*net), net::wire_error);

  release.set_value();
  const auto accepted = client.receive();
  EXPECT_EQ(accepted.id, accepted_id);
  ASSERT_EQ(accepted.status, net::wire_status::ok);
  EXPECT_EQ(accepted.result.words, want.result.words);
}

TEST(wire_policies, shutdown_flushes_inflight_responses_before_closing) {
  auto stack = std::make_unique<loopback_stack>(1u, 1u);
  auto client = net::wire_client::connect(stack->server.port());
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::uint64_t fp = client.register_program(*net);
  const auto words = random_planes(net->num_pis(), 64, 13);
  const auto want = client.run(make_run(fp, *net, 64, 3, words));
  ASSERT_EQ(want.status, net::wire_status::ok);
  stack->serving.drain();  // see the draining test: quiesce the warm tail

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  stack->executor.submit([released](unsigned) { released.wait(); });
  const std::uint64_t id = client.send(make_run(fp, *net, 64, 3, words));
  while (stack->serving.pending() == 0) {
    std::this_thread::yield();  // the request must be accepted pre-shutdown
  }

  std::thread closer{[&] { stack->server.shutdown(); }};
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  release.set_value();
  closer.join();

  // The accepted request's response was flushed before the teardown...
  const auto resp = client.receive();
  EXPECT_EQ(resp.id, id);
  ASSERT_EQ(resp.status, net::wire_status::ok);
  EXPECT_EQ(resp.result.words, want.result.words);
  // ...and the connection ends cleanly right after it.
  EXPECT_THROW((void)client.receive(), net::socket_error);
  EXPECT_THROW((void)net::wire_client::connect(stack->server.port()), net::socket_error);
}

}  // namespace
}  // namespace wavemig
