#include "wavemig/gen/arith.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

std::vector<bool> to_bits(std::uint64_t value, unsigned width) {
  std::vector<bool> bits(width);
  for (unsigned i = 0; i < width; ++i) {
    bits[i] = (value >> i) & 1u;
  }
  return bits;
}

std::uint64_t from_bits(const std::vector<bool>& bits, unsigned begin, unsigned count) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    v |= static_cast<std::uint64_t>(bits[begin + i]) << i;
  }
  return v;
}

class adder_width_test : public ::testing::TestWithParam<unsigned> {};

TEST_P(adder_width_test, matches_integer_addition) {
  const unsigned w = GetParam();
  const auto net = gen::ripple_adder_circuit(w);
  std::mt19937_64 rng{w};
  const std::uint64_t mask = w == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    auto in = to_bits(a, w);
    const auto bb = to_bits(b, w);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto out = simulate_pattern(net, in);
    const std::uint64_t sum = from_bits(out, 0, w);
    const bool carry = out[w];
    if (w < 64) {
      EXPECT_EQ(sum | (static_cast<std::uint64_t>(carry) << w), a + b);
    } else {
      const auto wide = static_cast<unsigned __int128>(a) + b;
      EXPECT_EQ(sum, static_cast<std::uint64_t>(wide));
      EXPECT_EQ(carry, static_cast<bool>(wide >> 64));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(widths, adder_width_test, ::testing::Values(1u, 2u, 7u, 8u, 16u, 33u),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

class multiplier_width_test : public ::testing::TestWithParam<unsigned> {};

TEST_P(multiplier_width_test, matches_integer_multiplication) {
  const unsigned w = GetParam();
  const auto net = gen::multiplier_circuit(w);
  std::mt19937_64 rng{17 * w};
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    auto in = to_bits(a, w);
    const auto bb = to_bits(b, w);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto out = simulate_pattern(net, in);
    EXPECT_EQ(from_bits(out, 0, 2 * w), a * b) << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(widths, multiplier_width_test, ::testing::Values(2u, 3u, 5u, 8u, 12u),
                         [](const auto& info) { return "w" + std::to_string(info.param); });

TEST(arith, mac_matches_reference) {
  const unsigned w = 6;
  const auto net = gen::mac_circuit(w);
  std::mt19937_64 rng{5};
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t a = rng() & 0x3Fu;
    const std::uint64_t b = rng() & 0x3Fu;
    const std::uint64_t c = rng() & 0x3Fu;
    std::vector<bool> in;
    for (auto v : {a, b, c}) {
      const auto bits = to_bits(v, w);
      in.insert(in.end(), bits.begin(), bits.end());
    }
    const auto out = simulate_pattern(net, in);
    EXPECT_EQ(from_bits(out, 0, 2 * w), a * b + c);
  }
}

TEST(arith, hamming_distance_matches_popcount) {
  const unsigned w = 16;
  const auto net = gen::hamming_distance_circuit(w);
  std::mt19937_64 rng{7};
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t a = rng() & 0xFFFFu;
    const std::uint64_t b = rng() & 0xFFFFu;
    auto in = to_bits(a, w);
    const auto bb = to_bits(b, w);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto out = simulate_pattern(net, in);
    const auto expected = static_cast<std::uint64_t>(std::popcount(a ^ b));
    EXPECT_EQ(from_bits(out, 0, static_cast<unsigned>(out.size())), expected);
  }
}

TEST(arith, hamming_codec_corrects_single_errors) {
  const auto net = gen::hamming_codec_circuit(4);  // (15,11)
  std::mt19937_64 rng{9};
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t data = rng() & 0x7FFu;  // 11 bits
    for (int err = -1; err < 15; ++err) {       // -1: no error, else flip bit
      std::vector<bool> in = to_bits(data, 11);
      std::vector<bool> mask(15, false);
      if (err >= 0) {
        mask[err] = true;
      }
      in.insert(in.end(), mask.begin(), mask.end());
      const auto out = simulate_pattern(net, in);
      EXPECT_EQ(from_bits(out, 0, 11), data) << "error position " << err;
    }
  }
}

TEST(arith, parity_matches_xor_reduction) {
  const auto net = gen::parity_circuit(12);
  std::mt19937_64 rng{3};
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t v = rng() & 0xFFFu;
    const auto out = simulate_pattern(net, to_bits(v, 12));
    EXPECT_EQ(out[0], std::popcount(v) % 2 == 1);
  }
}

TEST(arith, comparator_triple) {
  const auto net = gen::comparator_circuit(8);
  std::mt19937_64 rng{21};
  for (int round = 0; round < 80; ++round) {
    const std::uint64_t a = rng() & 0xFFu;
    const std::uint64_t b = rng() & 0xFFu;
    auto in = to_bits(a, 8);
    const auto bb = to_bits(b, 8);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto out = simulate_pattern(net, in);
    EXPECT_EQ(out[0], a < b);
    EXPECT_EQ(out[1], a == b);
    EXPECT_EQ(out[2], a > b);
  }
}

TEST(arith, max_of_four) {
  const auto net = gen::max_circuit(6, 4);
  std::mt19937_64 rng{13};
  for (int round = 0; round < 50; ++round) {
    std::uint64_t values[4];
    std::vector<bool> in;
    std::uint64_t expected = 0;
    for (auto& v : values) {
      v = rng() & 0x3Fu;
      expected = std::max(expected, v);
      const auto bits = to_bits(v, 6);
      in.insert(in.end(), bits.begin(), bits.end());
    }
    const auto out = simulate_pattern(net, in);
    EXPECT_EQ(from_bits(out, 0, 6), expected);
  }
}

TEST(arith, popcount_word_is_binary_count) {
  mig_network net;
  const auto in = gen::make_input_word(net, 11, "x");
  gen::make_output_word(net, gen::popcount(net, in), "c");
  std::mt19937_64 rng{31};
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t v = rng() & 0x7FFu;
    const auto out = simulate_pattern(net, to_bits(v, 11));
    EXPECT_EQ(from_bits(out, 0, static_cast<unsigned>(out.size())),
              static_cast<std::uint64_t>(std::popcount(v)));
  }
}

TEST(arith, popcount_depth_is_logarithmic) {
  mig_network net;
  const auto in = gen::make_input_word(net, 64, "x");
  gen::make_output_word(net, gen::popcount(net, in), "c");
  EXPECT_LE(compute_levels(net).depth, 30u);
}

TEST(arith, diffeq_step_matches_reference_model) {
  const unsigned w = 8;
  const auto net = gen::diffeq_circuit(w);
  std::mt19937_64 rng{37};
  const std::uint64_t mask = 0xFFu;
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t x = rng() & mask;
    const std::uint64_t y = rng() & mask;
    const std::uint64_t u = rng() & mask;
    const std::uint64_t dx = rng() & mask;
    std::vector<bool> in;
    for (auto v : {x, y, u, dx}) {
      const auto bits = to_bits(v, w);
      in.insert(in.end(), bits.begin(), bits.end());
    }
    const auto out = simulate_pattern(net, in);
    const std::uint64_t x1 = (x + dx) & mask;
    const std::uint64_t y1 = (y + u * dx) & mask;
    const std::uint64_t t1 = (3 * ((x * u & mask) * dx & mask)) & mask;
    const std::uint64_t t2 = (3 * (y * dx & mask)) & mask;
    const std::uint64_t u1 = (u - t1 - t2) & mask;
    EXPECT_EQ(from_bits(out, 0, w), x1);
    EXPECT_EQ(from_bits(out, w, w), y1);
    EXPECT_EQ(from_bits(out, 2 * w, w), u1);
  }
}

TEST(arith, sub_ripple_two_complement) {
  mig_network net;
  const auto a = gen::make_input_word(net, 8, "a");
  const auto b = gen::make_input_word(net, 8, "b");
  auto [diff, no_borrow] = gen::sub_ripple(net, a, b);
  gen::make_output_word(net, diff, "d");
  net.create_po(no_borrow, "nb");
  std::mt19937_64 rng{41};
  for (int round = 0; round < 60; ++round) {
    const std::uint64_t x = rng() & 0xFFu;
    const std::uint64_t y = rng() & 0xFFu;
    auto in = to_bits(x, 8);
    const auto bb = to_bits(y, 8);
    in.insert(in.end(), bb.begin(), bb.end());
    const auto out = simulate_pattern(net, in);
    EXPECT_EQ(from_bits(out, 0, 8), (x - y) & 0xFFu);
    EXPECT_EQ(out[8], x >= y);
  }
}

TEST(arith, input_validation) {
  mig_network net;
  const auto a = gen::make_input_word(net, 4, "a");
  const auto b = gen::make_input_word(net, 5, "b");
  EXPECT_THROW(gen::add_ripple(net, a, b, constant0), std::invalid_argument);
  EXPECT_THROW(gen::multiply_array(net, a, b), std::invalid_argument);
  EXPECT_THROW(gen::mux_word(net, a[0], a, b), std::invalid_argument);
  EXPECT_THROW(gen::hamming_codec_circuit(1), std::invalid_argument);
  EXPECT_THROW(gen::max_circuit(4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
