#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/io/verilog.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

mig_network round_trip(const mig_network& net) {
  std::stringstream ss;
  io::write_verilog(net, ss);
  return io::read_verilog(ss);
}

TEST(verilog_reader, round_trips_logic_networks) {
  const auto net = gen::multiplier_circuit(4);
  const auto back = round_trip(net);
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  EXPECT_EQ(back.num_majorities(), net.num_majorities());
  EXPECT_TRUE(functionally_equivalent(net, back));
}

TEST(verilog_reader, round_trips_physical_netlists) {
  const auto restricted = restrict_fanout(gen::ripple_adder_circuit(6), {3, true});
  const auto balanced = insert_buffers(restricted.net);
  const auto back = round_trip(balanced.net);
  EXPECT_EQ(back.num_buffers(), balanced.net.num_buffers());
  EXPECT_EQ(back.num_fanout_gates(), balanced.net.num_fanout_gates());
  EXPECT_EQ(back.num_majorities(), balanced.net.num_majorities());
  EXPECT_TRUE(functionally_equivalent(balanced.net, back));
}

TEST(verilog_reader, majority_pattern_is_rebuilt_as_one_gate) {
  std::stringstream ss{R"(module m(a, b, c, f);
  input a; input b; input c;
  output f;
  wire n1;
  assign n1 = (a & ~b) | (a & c) | (~b & c);
  assign f = n1;
endmodule
)"};
  const auto net = io::read_verilog(ss);
  EXPECT_EQ(net.num_majorities(), 1u);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], truth_table::maj(a, ~b, c));
}

TEST(verilog_reader, general_expressions_synthesize) {
  std::stringstream ss{R"(module m(a, b, c, f, g);
  input a, b, c;
  output f, g;
  assign f = (a ^ b) & ~c;
  assign g = a | b | (c & 1'b1);
endmodule
)"};
  const auto net = io::read_verilog(ss);
  const auto tts = simulate_truth_tables(net);
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  EXPECT_EQ(tts[0], (a ^ b) & ~c);
  EXPECT_EQ(tts[1], a | b | c);
}

TEST(verilog_reader, out_of_order_assigns_resolve) {
  std::stringstream ss{R"(module m(a, b, f);
  input a, b;
  output f;
  assign f = mid & a;
  assign mid = a | b;
endmodule
)"};
  const auto net = io::read_verilog(ss);
  const auto tts = simulate_truth_tables(net);
  EXPECT_EQ(tts[0], (truth_table::nth_var(2, 0) | truth_table::nth_var(2, 1)) &
                        truth_table::nth_var(2, 0));
}

TEST(verilog_reader, escaped_identifiers) {
  // Escaped identifiers run to the next whitespace and may contain
  // characters that are otherwise operators.
  std::stringstream ss{"module m(\\sig[3] , f);\n  input \\sig[3] ;\n  output f;\n"
                       "  assign f = ~\\sig[3] ;\nendmodule\n"};
  const auto net = io::read_verilog(ss);
  EXPECT_EQ(net.pi_name(0), "sig[3]");
  EXPECT_TRUE(net.po_signal(0).is_complemented());
}

TEST(verilog_reader, buf_fog_tags_restore_components) {
  std::stringstream ss{R"(module m(a, f);
  input a;
  output f;
  assign n1 = a;  // BUF
  assign n2 = n1; // FOG
  assign f = n2;
endmodule
)"};
  const auto net = io::read_verilog(ss);
  EXPECT_EQ(net.num_buffers(), 1u);
  EXPECT_EQ(net.num_fanout_gates(), 1u);
}

TEST(verilog_reader, untagged_identity_is_an_alias) {
  std::stringstream ss{R"(module m(a, f);
  input a;
  output f;
  assign n1 = a;
  assign f = n1;
endmodule
)"};
  const auto net = io::read_verilog(ss);
  EXPECT_EQ(net.num_components(), 0u);
  EXPECT_EQ(net.po_signal(0).index(), net.pis()[0]);
}

TEST(verilog_reader, rejects_cycles_and_redefinitions) {
  std::stringstream cycle{R"(module m(a, f);
  input a;
  output f;
  assign x = y & a;
  assign y = x | a;
  assign f = x;
endmodule
)"};
  EXPECT_THROW(io::read_verilog(cycle), io::parse_error);

  std::stringstream redef{R"(module m(a, f);
  input a;
  output f;
  assign f = a;
  assign f = ~a;
endmodule
)"};
  EXPECT_THROW(io::read_verilog(redef), io::parse_error);
}

TEST(verilog_reader, rejects_malformed_input) {
  std::stringstream bad_expr{"module m(a, f);\n input a;\n output f;\n assign f = a &;\nendmodule\n"};
  EXPECT_THROW(io::read_verilog(bad_expr), io::parse_error);
  std::stringstream bad_char{"module m(a, f);\n input a;\n output f;\n assign f = a @ a;\nendmodule\n"};
  EXPECT_THROW(io::read_verilog(bad_char), io::parse_error);
  std::stringstream undef_out{"module m(a, f);\n input a;\n output f;\nendmodule\n"};
  EXPECT_THROW(io::read_verilog(undef_out), io::parse_error);
  std::stringstream unknown{"module m(a);\n input a;\n initial begin end\nendmodule\n"};
  EXPECT_THROW(io::read_verilog(unknown), io::parse_error);
}

TEST(verilog_reader, file_round_trip) {
  const auto net = gen::comparator_circuit(6);
  const std::string path = ::testing::TempDir() + "wavemig_io_test.v";
  io::write_verilog_file(net, path);
  const auto back = io::read_verilog_file(path);
  EXPECT_TRUE(functionally_equivalent(net, back));
  EXPECT_THROW(io::read_verilog_file("/nonexistent/x.v"), std::runtime_error);
}

}  // namespace
}  // namespace wavemig
