#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/io/dot.hpp"
#include "wavemig/io/verilog.hpp"

namespace wavemig {
namespace {

TEST(verilog_writer, emits_module_with_ports) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  net.create_po(net.create_maj(a, b, c), "f");
  std::stringstream ss;
  io::write_verilog(net, ss, "majority3");
  const std::string text = ss.str();
  EXPECT_NE(text.find("module majority3("), std::string::npos);
  EXPECT_NE(text.find("input \\a ;"), std::string::npos);
  EXPECT_NE(text.find("output \\f ;"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(verilog_writer, majority_expands_to_and_or) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  net.create_po(net.create_maj(a, !b, c), "f");
  std::stringstream ss;
  io::write_verilog(net, ss);
  const std::string text = ss.str();
  // (a & ~b) | (a & c) | (~b & c) with escaped names.
  EXPECT_NE(text.find("&"), std::string::npos);
  EXPECT_NE(text.find("|"), std::string::npos);
  EXPECT_NE(text.find("~"), std::string::npos);
}

TEST(verilog_writer, constants_and_identity_components) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal g = net.create_and(a, b);
  const signal buf = net.create_buffer(g);
  const signal fog = net.create_fanout(buf);
  net.create_po(fog, "f");
  std::stringstream ss;
  io::write_verilog(net, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("1'b0"), std::string::npos);  // AND encoded as M(a,b,0)
  EXPECT_NE(text.find("// BUF"), std::string::npos);
  EXPECT_NE(text.find("// FOG"), std::string::npos);
}

TEST(verilog_writer, every_wire_is_declared_before_use) {
  const auto net = insert_buffers(gen::multiplier_circuit(3)).net;
  std::stringstream ss;
  io::write_verilog(net, ss);
  const std::string text = ss.str();
  std::size_t wires = 0;
  for (std::size_t pos = text.find("  wire "); pos != std::string::npos;
       pos = text.find("  wire ", pos + 1)) {
    ++wires;
  }
  EXPECT_EQ(wires, net.num_components());
}

TEST(dot_writer, renders_all_component_kinds) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal m = net.create_maj(a, !b, c);
  const signal buf = net.create_buffer(m);
  net.create_po(net.create_fanout(buf), "f");
  std::stringstream ss;
  io::write_dot(net, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("digraph mig"), std::string::npos);
  EXPECT_NE(text.find("MAJ"), std::string::npos);
  EXPECT_NE(text.find("BUF"), std::string::npos);
  EXPECT_NE(text.find("FOG"), std::string::npos);
  EXPECT_NE(text.find("style=dashed"), std::string::npos);  // complement edge
  EXPECT_NE(text.find("rank=same"), std::string::npos);     // level ranking
}

TEST(dot_writer, level_ranks_align_wave_fronts) {
  const auto net = insert_buffers(gen::ripple_adder_circuit(3)).net;
  std::stringstream ss;
  io::write_dot(net, ss);
  const std::string text = ss.str();
  // One rank group per level 0..depth.
  std::size_t ranks = 0;
  for (std::size_t pos = text.find("rank=same"); pos != std::string::npos;
       pos = text.find("rank=same", pos + 1)) {
    ++ranks;
  }
  EXPECT_GE(ranks, 4u);
}

}  // namespace
}  // namespace wavemig
