#include "wavemig/gen/crypto.hpp"

#include <gtest/gtest.h>

#include <array>
#include <random>

#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(des_sbox, known_spec_values) {
  // Spot checks against FIPS 46-3 (S1 and S8).
  EXPECT_EQ(gen::des_sbox(0)[0][0], 14);
  EXPECT_EQ(gen::des_sbox(0)[1][0], 0);
  EXPECT_EQ(gen::des_sbox(0)[3][15], 13);
  EXPECT_EQ(gen::des_sbox(7)[0][0], 13);
  EXPECT_EQ(gen::des_sbox(7)[3][15], 11);
  EXPECT_THROW(gen::des_sbox(8), std::invalid_argument);
}

TEST(des_sbox, every_row_is_a_permutation) {
  // Each S-box row permutes 0..15 (a property of the DES spec; catches
  // transcription errors in the embedded tables).
  for (unsigned box = 0; box < 8; ++box) {
    for (unsigned row = 0; row < 4; ++row) {
      std::array<bool, 16> seen{};
      for (unsigned col = 0; col < 16; ++col) {
        const auto v = gen::des_sbox(box)[row][col];
        ASSERT_LT(v, 16);
        EXPECT_FALSE(seen[v]) << "box " << box << " row " << row;
        seen[v] = true;
      }
    }
  }
}

TEST(des_sbox, network_matches_table_exhaustively) {
  for (unsigned box = 0; box < 8; ++box) {
    mig_network net;
    std::array<signal, 6> in{};
    for (auto& s : in) {
      s = net.create_pi();
    }
    const auto out = gen::des_sbox_network(net, in, box);
    for (const auto s : out) {
      net.create_po(s);
    }
    const auto tts = simulate_truth_tables(net);
    for (unsigned v = 0; v < 64; ++v) {
      const unsigned row = ((v >> 5) << 1) | (v & 1u);
      const unsigned col = (v >> 1) & 0xFu;
      const unsigned expected = gen::des_sbox(box)[row][col];
      for (unsigned bit = 0; bit < 4; ++bit) {
        EXPECT_EQ(tts[bit].get_bit(v), ((expected >> bit) & 1u) != 0)
            << "box " << box << " input " << v << " bit " << bit;
      }
    }
  }
}

TEST(des_circuit, matches_software_feistel_reference) {
  constexpr std::array<std::uint8_t, 48> expansion{
      32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
      12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
      22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};
  constexpr std::array<std::uint8_t, 32> permutation{
      16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
      2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

  const unsigned rounds = 2;
  const auto net = gen::des_circuit(rounds);
  ASSERT_EQ(net.num_pis(), 128u);
  ASSERT_EQ(net.num_pos(), 64u);

  std::mt19937_64 rng{71};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> in(128);
    for (auto&& b : in) {
      b = (rng() & 1u) != 0;
    }
    // Software reference.
    std::vector<bool> left(in.begin(), in.begin() + 32);
    std::vector<bool> right(in.begin() + 32, in.begin() + 64);
    const std::vector<bool> key(in.begin() + 64, in.end());
    for (unsigned r = 0; r < rounds; ++r) {
      std::array<bool, 48> expanded{};
      for (unsigned i = 0; i < 48; ++i) {
        expanded[i] = right[expansion[i] - 1] ^ key[(i + 7 * r) % 64];
      }
      std::array<bool, 32> substituted{};
      for (unsigned box = 0; box < 8; ++box) {
        const bool* e = &expanded[box * 6];
        const unsigned row = (e[0] ? 2u : 0u) | (e[5] ? 1u : 0u);
        const unsigned col = (e[1] ? 8u : 0u) | (e[2] ? 4u : 0u) | (e[3] ? 2u : 0u) |
                             (e[4] ? 1u : 0u);
        const unsigned s = gen::des_sbox(box)[row][col];
        for (unsigned bit = 0; bit < 4; ++bit) {
          substituted[box * 4 + (3 - bit)] = ((s >> bit) & 1u) != 0;
        }
      }
      std::vector<bool> mixed(32);
      for (unsigned i = 0; i < 32; ++i) {
        mixed[i] = left[i] ^ substituted[permutation[i] - 1];
      }
      left = right;
      right = mixed;
    }

    const auto out = simulate_pattern(net, in);
    for (unsigned i = 0; i < 32; ++i) {
      EXPECT_EQ(out[i], left[i]) << "left bit " << i;
      EXPECT_EQ(out[32 + i], right[i]) << "right bit " << i;
    }
  }
}

TEST(des_circuit, rounds_scale_size_and_depth) {
  const auto two = gen::des_circuit(2);
  const auto four = gen::des_circuit(4);
  EXPECT_GT(four.num_majorities(), two.num_majorities());
  EXPECT_GT(compute_levels(four).depth, compute_levels(two).depth);
  EXPECT_THROW(gen::des_circuit(0), std::invalid_argument);
}

TEST(reversible_cascade, deterministic_and_reversible_sampled) {
  const auto a = gen::reversible_cascade_circuit(8, 60, 5);
  const auto b = gen::reversible_cascade_circuit(8, 60, 5);
  EXPECT_EQ(a.num_majorities(), b.num_majorities());
  EXPECT_TRUE(functionally_equivalent(a, b));

  // A Toffoli/CNOT/NOT cascade is a permutation of the 2^8 input space:
  // all 256 outputs must be distinct.
  const auto tts = simulate_truth_tables(a);
  std::array<bool, 256> seen{};
  for (unsigned v = 0; v < 256; ++v) {
    unsigned out = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      out |= static_cast<unsigned>(tts[bit].get_bit(v)) << bit;
    }
    EXPECT_FALSE(seen[out]) << "collision at input " << v;
    seen[out] = true;
  }
}

TEST(reversible_cascade, different_seeds_differ) {
  const auto a = gen::reversible_cascade_circuit(8, 60, 5);
  const auto b = gen::reversible_cascade_circuit(8, 60, 6);
  EXPECT_FALSE(functionally_equivalent(a, b));
  EXPECT_THROW(gen::reversible_cascade_circuit(2, 10, 1), std::invalid_argument);
}

TEST(crc32, matches_software_bitwise_crc) {
  const unsigned data_bits = 8;
  const auto net = gen::crc32_circuit(data_bits);
  std::mt19937_64 rng{77};
  for (int trial = 0; trial < 40; ++trial) {
    const auto state = static_cast<std::uint32_t>(rng());
    const auto data = static_cast<std::uint8_t>(rng());

    std::uint32_t crc = state;
    for (unsigned i = 0; i < data_bits; ++i) {
      const bool feedback = ((crc ^ (data >> i)) & 1u) != 0;
      crc >>= 1;
      if (feedback) {
        crc ^= 0xEDB88320u;
      }
    }

    std::vector<bool> in;
    for (unsigned i = 0; i < 32; ++i) {
      in.push_back((state >> i) & 1u);
    }
    for (unsigned i = 0; i < data_bits; ++i) {
      in.push_back((data >> i) & 1u);
    }
    const auto out = simulate_pattern(net, in);
    std::uint32_t result = 0;
    for (unsigned i = 0; i < 32; ++i) {
      result |= static_cast<std::uint32_t>(out[i]) << i;
    }
    EXPECT_EQ(result, crc);
  }
}

}  // namespace
}  // namespace wavemig
